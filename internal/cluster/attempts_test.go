package cluster

import (
	"testing"
	"testing/quick"
	"time"

	"fuzzyjoin/internal/mapreduce"
)

// TestLPTAttemptsReducesToLPT: single-attempt chains must schedule
// exactly like the plain task list — failure-aware scheduling is a
// strict generalization.
func TestLPTAttemptsReducesToLPT(t *testing.T) {
	f := func(raw []uint16, slots8 uint8) bool {
		slots := int(slots8%16) + 1
		tasks := make([]time.Duration, len(raw))
		chains := make([][]time.Duration, len(raw))
		for i, v := range raw {
			tasks[i] = time.Duration(v)
			chains[i] = []time.Duration{tasks[i]}
		}
		return LPTAttempts(chains, slots) == LPT(tasks, slots)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLPTAttemptsSerializesRetries: a task's retry cannot start before
// its previous attempt failed, even when an idle slot is available.
func TestLPTAttemptsSerializesRetries(t *testing.T) {
	// One task, chain 5 then 3, plenty of slots: the retry waits for the
	// failure, so the makespan is 8, not max(5,3).
	if got := LPTAttempts([][]time.Duration{{5, 3}}, 8); got != 8 {
		t.Fatalf("single retried task makespan = %v, want 8", got)
	}
	// Two slots, tasks {5,3} and {4}: the failed attempt occupies slot A
	// for 5 while {4} runs on B; the retry lands on B at t=5 (it was free
	// at 4 but must wait for the failure) ending at 8.
	if got := LPTAttempts([][]time.Duration{{5, 3}, {4}}, 2); got != 8 {
		t.Fatalf("retry + other task makespan = %v, want 8", got)
	}
}

// TestRetriesNeverShortenMakespan: adding failed attempts to any chain
// can only grow (or keep) the makespan.
func TestRetriesNeverShortenMakespan(t *testing.T) {
	f := func(raw []uint16, fail uint16, idx8, slots8 uint8) bool {
		if len(raw) == 0 {
			return true
		}
		slots := int(slots8%8) + 1
		clean := make([][]time.Duration, len(raw))
		faulty := make([][]time.Duration, len(raw))
		for i, v := range raw {
			clean[i] = []time.Duration{time.Duration(v)}
			faulty[i] = []time.Duration{time.Duration(v)}
		}
		i := int(idx8) % len(raw)
		faulty[i] = append([]time.Duration{time.Duration(fail)}, faulty[i]...)
		return LPTAttempts(faulty, slots) >= LPTAttempts(clean, slots)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestMakespanChargesFailedAttempts: end to end, a reduce task with a
// failed attempt stretches the job makespan by the wasted work.
func TestMakespanChargesFailedAttempts(t *testing.T) {
	s := Spec{Nodes: 1, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1}
	clean := JobCost{
		MapCosts:    []time.Duration{time.Second},
		ReduceCosts: []time.Duration{time.Second},
	}
	faulty := clean
	faulty.ReduceAttempts = [][]time.Duration{{500 * time.Millisecond, time.Second}}
	cleanSpan := s.Makespan(clean)
	faultySpan := s.Makespan(faulty)
	if want := cleanSpan + 500*time.Millisecond; faultySpan != want {
		t.Fatalf("faulty makespan = %v, want %v (clean %v + 500ms wasted)", faultySpan, want, cleanSpan)
	}
}

// TestMakespanRetriedMapPaysLocality: a map attempt chain flows through
// the locality-aware scheduler without panicking and charges every
// attempt.
func TestMakespanRetriedMapPaysLocality(t *testing.T) {
	s := Spec{Nodes: 2, MapSlotsPerNode: 1, ReduceSlotsPerNode: 1,
		NetBytesPerSec: 1 << 20}
	jc := JobCost{
		MapCosts:      []time.Duration{time.Second},
		MapAttempts:   [][]time.Duration{{time.Second, time.Second}},
		MapLocations:  [][]int{{0}},
		MapInputBytes: []int64{0},
	}
	st := s.scheduleMaps(jc, nil)
	if st.MapSpan != 2*time.Second {
		t.Fatalf("map span = %v, want 2s (failed attempt + retry)", st.MapSpan)
	}
}

// TestFromMetricsAttemptChains: FromMetrics copies attempt chains only
// for retried tasks and leaves the rest nil.
func TestFromMetricsAttemptChains(t *testing.T) {
	m := &mapreduce.Metrics{
		Job: "j",
		MapTasks: []mapreduce.TaskMetrics{
			{Cost: time.Second, Attempts: 1, AttemptCosts: []time.Duration{time.Second}},
			{Cost: 2 * time.Second, Attempts: 2,
				AttemptCosts: []time.Duration{time.Second / 2, 2 * time.Second}},
		},
		ReduceTasks: []mapreduce.TaskMetrics{
			{Cost: time.Second, Attempts: 1},
		},
	}
	jc := FromMetrics(m)
	if jc.MapAttempts == nil {
		t.Fatal("MapAttempts not populated for a retried task")
	}
	if jc.MapAttempts[0] != nil {
		t.Fatalf("single-attempt task got a chain: %v", jc.MapAttempts[0])
	}
	if len(jc.MapAttempts[1]) != 2 || jc.MapAttempts[1][0] != time.Second/2 {
		t.Fatalf("retried task chain wrong: %v", jc.MapAttempts[1])
	}
	if jc.ReduceAttempts != nil {
		t.Fatalf("ReduceAttempts should stay nil with no retries: %v", jc.ReduceAttempts)
	}
}
