package tokenize

import (
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestWordBasic(t *testing.T) {
	got := Word{}.Tokenize("I will call back")
	want := []string{"i", "will", "call", "back"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestWordCleaning(t *testing.T) {
	got := Word{}.Tokenize("  Smith, John-W.  (2010)!! ")
	want := []string{"smith", "john", "w", "2010"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestWordKeepCase(t *testing.T) {
	got := Word{KeepCase: true}.Tokenize("Ab aB")
	want := []string{"Ab", "aB"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestWordDuplicatesGetOccurrenceSuffix(t *testing.T) {
	got := Word{}.Tokenize("to be or not to be")
	want := []string{"to", "be", "or", "not", "to~2", "be~2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestWordEmptyAndPunctuationOnly(t *testing.T) {
	if got := (Word{}).Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v", got)
	}
	if got := (Word{}).Tokenize("!!! ... ---"); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v", got)
	}
}

func TestWordUnicode(t *testing.T) {
	got := Word{}.Tokenize("Gödel, Escher & Bach")
	want := []string{"gödel", "escher", "bach"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestWordNoDuplicatesProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Word{}.Tokenize(s)
		seen := make(map[string]bool, len(toks))
		for _, tok := range toks {
			if tok == "" || seen[tok] {
				return false
			}
			seen[tok] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQGramBasic(t *testing.T) {
	got := QGram{Q: 2, NoPad: true}.Tokenize("abcd")
	want := []string{"ab", "bc", "cd"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestQGramPadding(t *testing.T) {
	got := QGram{Q: 3}.Tokenize("ab")
	want := []string{"##a", "#ab", "ab#", "b##"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestQGramShortString(t *testing.T) {
	got := QGram{Q: 5, NoPad: true}.Tokenize("ab")
	want := []string{"ab"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
	if got := (QGram{Q: 3, NoPad: true}).Tokenize(""); got != nil {
		t.Fatalf("Tokenize(\"\") = %v, want nil", got)
	}
}

func TestQGramDefaultQ(t *testing.T) {
	got := QGram{}.Tokenize("abc")
	// q defaults to 3, padded with "##".
	if len(got) != 5 || got[0] != "##a" {
		t.Fatalf("Tokenize = %v", got)
	}
}

func TestQGramRepeats(t *testing.T) {
	got := QGram{Q: 1, NoPad: true}.Tokenize("aa")
	want := []string{"a", "a~2"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestOrderRankAndToken(t *testing.T) {
	o := NewOrder([]string{"rare", "mid", "common"})
	if o.Len() != 3 {
		t.Fatalf("Len = %d", o.Len())
	}
	r, ok := o.Rank("rare")
	if !ok || r != 0 {
		t.Fatalf("Rank(rare) = %d, %v", r, ok)
	}
	r, ok = o.Rank("common")
	if !ok || r != 2 {
		t.Fatalf("Rank(common) = %d, %v", r, ok)
	}
	if _, ok := o.Rank("absent"); ok {
		t.Fatal("Rank(absent) reported ok")
	}
	if o.Token(1) != "mid" {
		t.Fatalf("Token(1) = %q", o.Token(1))
	}
}

func TestSortByRank(t *testing.T) {
	o := NewOrder([]string{"c", "a", "b"}) // c rarest
	toks := []string{"a", "b", "c"}
	kept, ranks := o.SortByRank(toks)
	if !reflect.DeepEqual(kept, []string{"c", "a", "b"}) {
		t.Fatalf("kept = %v", kept)
	}
	if !reflect.DeepEqual(ranks, []uint32{0, 1, 2}) {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestSortByRankDropsUnknown(t *testing.T) {
	o := NewOrder([]string{"x", "y"})
	kept, ranks := o.SortByRank([]string{"z", "y", "w", "x"})
	if !reflect.DeepEqual(kept, []string{"x", "y"}) || !reflect.DeepEqual(ranks, []uint32{0, 1}) {
		t.Fatalf("kept = %v, ranks = %v", kept, ranks)
	}
}

func TestSortByRankProperty(t *testing.T) {
	// SortByRank must produce ranks in non-decreasing order and keep the
	// token↔rank alignment, for any vocabulary permutation.
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	o := NewOrder(vocab)
	f := func(idx []uint8) bool {
		toks := make([]string, 0, len(idx))
		for _, i := range idx {
			toks = append(toks, vocab[int(i)%len(vocab)])
		}
		kept, ranks := o.SortByRank(append([]string(nil), toks...))
		if len(kept) != len(ranks) {
			return false
		}
		if !sort.SliceIsSorted(ranks, func(i, j int) bool { return ranks[i] < ranks[j] }) {
			return false
		}
		for i := range kept {
			r, ok := o.Rank(kept[i])
			if !ok || r != ranks[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRanks(t *testing.T) {
	o := NewOrder([]string{"a", "b"})
	got := o.Ranks([]string{"b", "missing", "a"})
	if !reflect.DeepEqual(got, []uint32{1, 0}) {
		t.Fatalf("Ranks = %v", got)
	}
}

func TestPaperExample(t *testing.T) {
	// §2.3: string "I will call back", global ordering
	// {back, call, will, I} — prefix of length 2 is [back, call].
	o := NewOrder([]string{"back", "call", "will", "i"})
	toks := Word{}.Tokenize("I will call back")
	kept, _ := o.SortByRank(toks)
	if !reflect.DeepEqual(kept[:2], []string{"back", "call"}) {
		t.Fatalf("prefix = %v, want [back call]", kept[:2])
	}
}

func BenchmarkWordTokenize(b *testing.B) {
	s := strings.Repeat("Efficient Parallel Set-Similarity Joins Using MapReduce ", 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Word{}.Tokenize(s)
	}
}

func BenchmarkSortByRank(b *testing.B) {
	vocab := make([]string, 1000)
	for i := range vocab {
		vocab[i] = "tok" + strings.Repeat("x", i%7) + string(rune('a'+i%26))
	}
	// Deduplicate vocab entries (the construction above repeats).
	seen := map[string]bool{}
	uniq := vocab[:0]
	for _, v := range vocab {
		if !seen[v] {
			seen[v] = true
			uniq = append(uniq, v)
		}
	}
	o := NewOrder(uniq)
	sample := append([]string(nil), uniq[:20]...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := append([]string(nil), sample...)
		o.SortByRank(buf)
	}
}
