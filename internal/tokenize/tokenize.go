// Package tokenize maps strings into token multisets for set-similarity
// joins.
//
// The paper tokenizes the join attribute by word after cleaning
// (lower-casing and stripping punctuation is done "inside our algorithms",
// §6). A q-gram tokenizer is provided as the alternative the paper
// mentions in §2. Tokenizers deduplicate: the set-similarity functions in
// this system are defined over sets, so repeated tokens within one record
// are distinguished by an occurrence suffix, following the standard
// convention of the set-similarity join literature (a token appearing k
// times becomes k distinct elements "t", "t~2", ..., "t~k"). This keeps
// Jaccard well-defined on sets while not discarding duplicate evidence.
package tokenize

import (
	"strconv"
	"strings"
	"unicode"
)

// Tokenizer converts a string into a slice of set elements.
type Tokenizer interface {
	// Tokenize returns the token set of s. The result contains no
	// duplicates and no empty tokens; order is the order of first
	// occurrence in s.
	Tokenize(s string) []string
}

// Word tokenizes on non-alphanumeric boundaries after lower-casing. It is
// the tokenizer used for all experiments in the paper ("we tokenized the
// data by word").
type Word struct {
	// KeepCase disables lower-casing when set.
	KeepCase bool
}

// Tokenize implements Tokenizer.
func (w Word) Tokenize(s string) []string {
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
	out := make([]string, 0, len(fields))
	seen := make(map[string]int, len(fields))
	for _, f := range fields {
		if !w.KeepCase {
			f = strings.ToLower(f)
		}
		out = appendOccurrence(out, seen, f)
	}
	return out
}

// QGram produces overlapping substrings of length Q over the cleaned
// string, padding the ends with '#' so every character participates in Q
// grams, as is conventional for q-gram similarity.
type QGram struct {
	Q int
	// NoPad disables the '#' end padding.
	NoPad bool
}

// Tokenize implements Tokenizer.
func (g QGram) Tokenize(s string) []string {
	q := g.Q
	if q <= 0 {
		q = 3
	}
	s = strings.ToLower(s)
	if !g.NoPad {
		pad := strings.Repeat("#", q-1)
		s = pad + s + pad
	}
	runes := []rune(s)
	if len(runes) < q {
		if len(runes) == 0 {
			return nil
		}
		return []string{string(runes)}
	}
	out := make([]string, 0, len(runes)-q+1)
	seen := make(map[string]int, len(runes))
	for i := 0; i+q <= len(runes); i++ {
		out = appendOccurrence(out, seen, string(runes[i:i+q]))
	}
	return out
}

// appendOccurrence appends tok, renaming repeats "t" → "t~2", "t~3", ...
func appendOccurrence(out []string, seen map[string]int, tok string) []string {
	if tok == "" {
		return out
	}
	seen[tok]++
	if n := seen[tok]; n > 1 {
		tok = tok + "~" + strconv.Itoa(n)
	}
	return append(out, tok)
}

// Order is a global token ordering: a bijection from tokens to dense ranks
// where rank 0 is the least frequent token. Stage 2 mappers sort each
// record's tokens by rank before extracting the prefix, so infrequent
// tokens land in prefixes (the prefix-filter optimization of §2.3).
type Order struct {
	rank map[string]uint32
	toks []string
}

// NewOrder builds an Order from tokens listed in increasing frequency
// order (the output of Stage 1).
func NewOrder(tokensByFrequency []string) *Order {
	o := &Order{
		rank: make(map[string]uint32, len(tokensByFrequency)),
		toks: append([]string(nil), tokensByFrequency...),
	}
	for i, t := range o.toks {
		o.rank[t] = uint32(i)
	}
	return o
}

// Rank returns the rank of tok and whether it is present in the ordering.
// Tokens absent from the ordering (possible in the R-S join case, where
// the ordering is built from the smaller relation only) report ok=false;
// §4 of the paper discards them because they cannot produce candidates.
func (o *Order) Rank(tok string) (uint32, bool) {
	r, ok := o.rank[tok]
	return r, ok
}

// Token returns the token with the given rank.
func (o *Order) Token(rank uint32) string { return o.toks[rank] }

// Len returns the number of tokens in the ordering.
func (o *Order) Len() int { return len(o.toks) }

// SortByRank reorders toks in place into increasing global-frequency rank
// and returns the ranks. Tokens missing from the ordering are dropped
// (R-S case) — the returned slices are the kept tokens and their ranks,
// aligned.
func (o *Order) SortByRank(toks []string) ([]string, []uint32) {
	kept := toks[:0]
	ranks := make([]uint32, 0, len(toks))
	for _, t := range toks {
		if r, ok := o.rank[t]; ok {
			kept = append(kept, t)
			ranks = append(ranks, r)
		}
	}
	// Insertion sort on ranks, mirrored on kept: token sets are short
	// (tens of tokens), and insertion sort avoids an indirect sort.Slice
	// in the hottest mapper loop.
	for i := 1; i < len(ranks); i++ {
		r, t := ranks[i], kept[i]
		j := i - 1
		for j >= 0 && ranks[j] > r {
			ranks[j+1], kept[j+1] = ranks[j], kept[j]
			j--
		}
		ranks[j+1], kept[j+1] = r, t
	}
	return kept, ranks
}

// Ranks converts toks to their ranks, dropping unknown tokens, without
// sorting.
func (o *Order) Ranks(toks []string) []uint32 {
	out := make([]uint32, 0, len(toks))
	for _, t := range toks {
		if r, ok := o.rank[t]; ok {
			out = append(out, r)
		}
	}
	return out
}
