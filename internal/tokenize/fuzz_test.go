package tokenize

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzTokenize checks the tokenizer contract on arbitrary input: token
// sets contain no empty tokens and no duplicates, tokenization is
// deterministic, both tokenizers accept any string without panicking,
// and an Order built from a token set round-trips every token.
func FuzzTokenize(f *testing.F) {
	f.Add("Efficient Parallel Set-Similarity Joins Using MapReduce", 3)
	f.Add("a a a A\tbéé b", 2)
	f.Add("", 1)
	f.Add("\x00\xff\xfe punctuation!!! only???", 4)
	f.Add("ascii and 世界 mixed \U0001f600", 0)
	f.Fuzz(func(t *testing.T, s string, q int) {
		if q < 0 {
			q = -q
		}
		q %= 8

		checkSet := func(name string, toks []string) {
			seen := make(map[string]bool, len(toks))
			for _, tok := range toks {
				if tok == "" {
					t.Fatalf("%s produced an empty token for %q", name, s)
				}
				if seen[tok] {
					t.Fatalf("%s produced duplicate token %q for %q", name, tok, s)
				}
				seen[tok] = true
			}
		}

		words := Word{}.Tokenize(s)
		checkSet("Word", words)
		again := Word{}.Tokenize(s)
		if len(again) != len(words) {
			t.Fatalf("Word not deterministic on %q: %d vs %d tokens", s, len(words), len(again))
		}
		for i := range words {
			if words[i] != again[i] {
				t.Fatalf("Word not deterministic on %q at %d: %q vs %q", s, i, words[i], again[i])
			}
		}
		// Case folding merges fields but never changes their number: each
		// field yields exactly one (possibly occurrence-suffixed) token.
		if cased := (Word{KeepCase: true}).Tokenize(s); len(cased) != len(words) {
			t.Fatalf("KeepCase changed token count on %q: %d vs %d", s, len(cased), len(words))
		}
		for _, tok := range words {
			base := tok
			if i := strings.LastIndexByte(tok, '~'); i > 0 {
				base = tok[:i]
			}
			if base != strings.ToLower(base) {
				t.Fatalf("Word token %q not lower-cased (input %q)", tok, s)
			}
		}

		grams := QGram{Q: q}.Tokenize(s)
		checkSet("QGram", grams)
		if utf8.ValidString(s) {
			eq := q
			if eq <= 0 {
				eq = 3
			}
			for _, g := range grams {
				base := g
				if i := strings.LastIndexByte(g, '~'); i > 0 {
					base = g[:i]
				}
				if n := utf8.RuneCountInString(base); n > eq {
					t.Fatalf("QGram q=%d produced %d-rune gram %q for %q", eq, n, g, s)
				}
			}
		}

		// Orders are bijections over their token list.
		o := NewOrder(words)
		if o.Len() != len(words) {
			t.Fatalf("Order dropped tokens: %d vs %d", o.Len(), len(words))
		}
		for i, tok := range words {
			r, ok := o.Rank(tok)
			if !ok || int(r) != i {
				t.Fatalf("Rank(%q) = (%d,%v), want (%d,true)", tok, r, ok, i)
			}
			if o.Token(r) != tok {
				t.Fatalf("Token(Rank(%q)) = %q", tok, o.Token(r))
			}
		}
		// SortByRank over the reversed set returns the same set sorted.
		rev := make([]string, len(words))
		for i, tok := range words {
			rev[len(words)-1-i] = tok
		}
		kept, ranks := o.SortByRank(rev)
		if len(kept) != len(words) || len(ranks) != len(words) {
			t.Fatalf("SortByRank dropped known tokens: %d/%d kept", len(kept), len(words))
		}
		for i := range ranks {
			if int(ranks[i]) != i || kept[i] != words[i] {
				t.Fatalf("SortByRank out of order at %d: rank %d token %q", i, ranks[i], kept[i])
			}
		}
	})
}
