// Package svgplot renders minimal line and grouped-bar charts as SVG —
// enough to regenerate the paper's figures (running-time curves over
// cluster sizes, stacked per-stage bars over dataset sizes) from the
// experiment harness without any dependency.
package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	// Y[i] pairs with the chart's X[i]; NaN marks a missing point (e.g.
	// an OOM cell), which breaks the line and draws an ✕.
	Y []float64
}

// Chart describes a line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// X values (shared by all series).
	X []float64
	// XTickLabels overrides the numeric tick labels when set.
	XTickLabels []string
	Series      []Series
}

// palette follows the classic gnuplot-ish ordering the paper's figures
// use.
var palette = []string{"#c0392b", "#2980b9", "#27ae60", "#8e44ad", "#d35400", "#16a085"}

const (
	width   = 640
	height  = 420
	marginL = 70
	marginR = 160
	marginT = 44
	marginB = 56
)

// Line renders the chart as an SVG document.
func Line(c Chart) string {
	var b strings.Builder
	header(&b, c.Title)

	xmin, xmax := bounds(c.X)
	var ys []float64
	for _, s := range c.Series {
		for _, v := range s.Y {
			if !math.IsNaN(v) {
				ys = append(ys, v)
			}
		}
	}
	ymin, ymax := bounds(ys)
	if ymin > 0 {
		ymin = 0 // running-time axes start at zero, like the paper's
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(height-marginB) - (y-ymin)/(ymax-ymin)*plotH }

	axes(&b, c, xmin, xmax, ymin, ymax, px, py)

	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var path strings.Builder
		pen := false
		for i, v := range s.Y {
			if i >= len(c.X) {
				break
			}
			if math.IsNaN(v) {
				pen = false
				// Mark the missing point (the paper annotates OOM cells).
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="11" fill="%s" text-anchor="middle">✕</text>`+"\n",
					px(c.X[i]), py(ymin)+(-6), color)
				continue
			}
			cmd := "L"
			if !pen {
				cmd = "M"
				pen = true
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, px(c.X[i]), py(v))
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(c.X[i]), py(v), color)
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
			strings.TrimSpace(path.String()), color)
		legend(&b, si, s.Name, color)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// StackedBars renders grouped stacked bars: one group per X label, one
// stacked bar per series-set entry (e.g. per algorithm combination), with
// Stack layers (e.g. the three stages).
type StackedBars struct {
	Title  string
	YLabel string
	// Groups label the x axis (e.g. "x5", "x10", "x25").
	Groups []string
	// Bars are the per-group bar names (e.g. combos).
	Bars []string
	// Layers name the stack segments bottom-up (e.g. stages).
	Layers []string
	// Value[g][b][l] is the height of layer l of bar b in group g; NaN
	// anywhere marks the whole bar as failed (drawn as an ✕).
	Value [][][]float64
}

// Bars renders the stacked bar chart as an SVG document.
func Bars(sb StackedBars) string {
	var b strings.Builder
	header(&b, sb.Title)

	ymax := 0.0
	for _, g := range sb.Value {
		for _, bar := range g {
			total, bad := 0.0, false
			for _, v := range bar {
				if math.IsNaN(v) {
					bad = true
					break
				}
				total += v
			}
			if !bad && total > ymax {
				ymax = total
			}
		}
	}
	if ymax == 0 {
		ymax = 1
	}

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	py := func(y float64) float64 { return float64(height-marginB) - y/ymax*plotH }

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	yTicks(&b, 0, ymax, py)
	fmt.Fprintf(&b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		height/2, height/2, esc(sb.YLabel))

	groupW := plotW / float64(len(sb.Groups))
	barW := groupW / float64(len(sb.Bars)+1)
	for gi, g := range sb.Value {
		gx := float64(marginL) + float64(gi)*groupW
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
			gx+groupW/2, height-marginB+18, esc(sb.Groups[gi]))
		for bi, bar := range g {
			x := gx + (float64(bi)+0.5)*barW
			bad := false
			for _, v := range bar {
				if math.IsNaN(v) {
					bad = true
				}
			}
			if bad {
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="13" text-anchor="middle" fill="#c0392b">✕ OOM</text>`+"\n",
					x+barW/2, py(0)-6)
				continue
			}
			acc := 0.0
			for li, v := range bar {
				y0, y1 := py(acc), py(acc+v)
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#fff" stroke-width="0.5"/>`+"\n",
					x, y1, barW*0.9, y0-y1, palette[li%len(palette)])
				acc += v
			}
		}
	}
	for li, l := range sb.Layers {
		legend(&b, li, l, palette[li%len(palette)])
	}
	// Bar names under the legend.
	for bi, name := range sb.Bars {
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" fill="#555">bar %d: %s</text>`+"\n",
			width-marginR+12, marginT+20*(len(sb.Layers))+16+14*bi, bi+1, esc(name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func header(b *strings.Builder, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(b, `<text x="%d" y="24" font-size="15" text-anchor="middle">%s</text>`+"\n", width/2, esc(title))
}

func axes(b *strings.Builder, c Chart, xmin, xmax, ymin, ymax float64, px, py func(float64) float64) {
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	for i, x := range c.X {
		label := trimFloat(x)
		if i < len(c.XTickLabels) {
			label = c.XTickLabels[i]
		}
		fmt.Fprintf(b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(x), height-marginB+16, esc(label))
	}
	yTicks(b, ymin, ymax, py)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(marginL+width-marginR)/2, height-14, esc(c.XLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		height/2, height/2, esc(c.YLabel))
}

func yTicks(b *strings.Builder, ymin, ymax float64, py func(float64) float64) {
	step := niceStep((ymax - ymin) / 5)
	for v := math.Ceil(ymin/step) * step; v <= ymax+1e-9; v += step {
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, py(v), width-marginR, py(v))
		fmt.Fprintf(b, `<text x="%d" y="%.1f" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-6, py(v)+4, trimFloat(v))
	}
}

func legend(b *strings.Builder, i int, name, color string) {
	y := marginT + 20*i
	fmt.Fprintf(b, `<rect x="%d" y="%d" width="14" height="4" fill="%s"/>`+"\n", width-marginR+12, y, color)
	fmt.Fprintf(b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", width-marginR+32, y+6, esc(name))
}

func bounds(v []float64) (lo, hi float64) {
	if len(v) == 0 {
		return 0, 1
	}
	lo, hi = v[0], v[0]
	for _, x := range v[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// niceStep rounds a raw tick step to 1/2/5 × 10^k.
func niceStep(raw float64) float64 {
	if raw <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag < 1.5:
		return mag
	case raw/mag < 3.5:
		return 2 * mag
	case raw/mag < 7.5:
		return 5 * mag
	default:
		return 10 * mag
	}
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
