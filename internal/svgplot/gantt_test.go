package svgplot

import (
	"strings"
	"testing"
)

func TestGanttSVG(t *testing.T) {
	svg := GanttSVG(Gantt{
		Title:  "demo <chart>",
		XLabel: "time (ms)",
		Lanes:  []string{"node 0", "node 1"},
		Spans: []GanttSpan{
			{Lane: 0, Start: 0, End: 10, Color: "#2980b9", Label: "map task 0"},
			{Lane: 1, Start: 5, End: 6, Color: "#27ae60", Label: "reduce task 1"},
			{Lane: 5, Start: 0, End: 1}, // out-of-range lane: skipped, no panic
		},
		Marks: []GanttMark{{X: 7, Label: "node 1 dies"}},
		Keys:  []GanttKey{{Name: "map", Color: "#2980b9"}},
	})
	for _, want := range []string{
		"<svg", "</svg>",
		"demo &lt;chart&gt;", // title is escaped
		"node 0", "node 1",
		"map task 0", "reduce task 1", // tooltips
		"node 1 dies",
		"stroke-dasharray", // the mark line
		"time (ms)",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two in-range bars plus background, bands, and legend swatch — the
	// out-of-range span must not add a bar.
	if got := strings.Count(svg, "<title>"); got != 2 {
		t.Errorf("tooltip count = %d, want 2", got)
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	svg := GanttSVG(Gantt{Title: "empty"})
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart did not render")
	}
}
