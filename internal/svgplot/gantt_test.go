package svgplot

import (
	"strings"
	"testing"
)

func TestGanttSVG(t *testing.T) {
	svg := GanttSVG(Gantt{
		Title:  "demo <chart>",
		XLabel: "time (ms)",
		Lanes:  []string{"node 0", "node 1"},
		Spans: []GanttSpan{
			{Lane: 0, Start: 0, End: 10, Color: "#2980b9", Label: "map task 0"},
			{Lane: 1, Start: 5, End: 6, Color: "#27ae60", Label: "reduce task 1"},
			{Lane: 5, Start: 0, End: 1}, // out-of-range lane: skipped, no panic
		},
		Marks: []GanttMark{{X: 7, Label: "node 1 dies"}},
		Keys:  []GanttKey{{Name: "map", Color: "#2980b9"}},
	})
	for _, want := range []string{
		"<svg", "</svg>",
		"demo &lt;chart&gt;", // title is escaped
		"node 0", "node 1",
		"map task 0", "reduce task 1", // tooltips
		"node 1 dies",
		"stroke-dasharray", // the mark line
		"time (ms)",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two in-range bars plus background, bands, and legend swatch — the
	// out-of-range span must not add a bar.
	if got := strings.Count(svg, "<title>"); got != 2 {
		t.Errorf("tooltip count = %d, want 2", got)
	}
}

func TestGanttSVGEmpty(t *testing.T) {
	svg := GanttSVG(Gantt{Title: "empty"})
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("empty chart did not render")
	}
}

// TestGanttSVGSubPixelSpan: a zero- or near-zero-duration span must
// still draw a visible sliver rather than a 0-width rect.
func TestGanttSVGSubPixelSpan(t *testing.T) {
	svg := GanttSVG(Gantt{
		Lanes: []string{"node 0"},
		Spans: []GanttSpan{
			{Lane: 0, Start: 5, End: 5, Color: "#111", Label: "instant"},
			{Lane: 0, Start: 0, End: 100, Color: "#222", Label: "long"},
		},
	})
	if !strings.Contains(svg, `width="1.2"`) {
		t.Error("zero-duration span not widened to the minimum sliver")
	}
	if got := strings.Count(svg, "<title>"); got != 2 {
		t.Errorf("bar count = %d, want 2", got)
	}
}

// TestGanttSVGMarkBeyondSpans: a mark past the last span must extend
// the time axis so it stays inside the plot.
func TestGanttSVGMarkBeyondSpans(t *testing.T) {
	svg := GanttSVG(Gantt{
		Lanes: []string{"node 0"},
		Spans: []GanttSpan{{Lane: 0, Start: 0, End: 10, Color: "#111"}},
		Marks: []GanttMark{{X: 40, Label: "late failure"}},
	})
	if !strings.Contains(svg, "late failure") {
		t.Fatal("mark label missing")
	}
	// With xmax = 40 the axis must label a tick past 10.
	if !strings.Contains(svg, ">40<") && !strings.Contains(svg, ">30<") {
		t.Errorf("axis did not extend to cover the mark:\n%s", svg)
	}
}

// TestGanttSVGMarkDefaultColor: a mark without a color falls back to
// the failure red instead of emitting stroke="".
func TestGanttSVGMarkDefaultColor(t *testing.T) {
	svg := GanttSVG(Gantt{Marks: []GanttMark{{X: 1}}})
	if strings.Contains(svg, `stroke=""`) {
		t.Error("colorless mark emitted an empty stroke")
	}
	if !strings.Contains(svg, "#c0392b") {
		t.Error("default mark color missing")
	}
}
