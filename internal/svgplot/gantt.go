package svgplot

import (
	"fmt"
	"math"
	"strings"
)

// Gantt renders horizontal-lane timeline charts — one lane per cluster
// node, one bar per placed task attempt — the per-node schedule view a
// Hadoop job tracker would show. The trace subsystem feeds it simulated
// cluster time from internal/cluster.

// GanttSpan is one bar: a half-open interval [Start, End) on a lane.
type GanttSpan struct {
	// Lane indexes Gantt.Lanes.
	Lane int
	// Start and End are in the chart's time unit (the caller scales).
	Start, End float64
	// Color is the fill; Label is the hover tooltip (SVG <title>).
	Color string
	Label string
}

// GanttMark is a labelled vertical line (e.g. a node death instant).
type GanttMark struct {
	X     float64
	Label string
	Color string
}

// GanttKey is one legend entry.
type GanttKey struct {
	Name  string
	Color string
}

// Gantt describes a timeline chart.
type Gantt struct {
	Title  string
	XLabel string
	// Lanes are the row labels, top to bottom (e.g. "node 0").
	Lanes []string
	Spans []GanttSpan
	Marks []GanttMark
	Keys  []GanttKey
}

const (
	ganttLaneH   = 34
	ganttBarH    = 24
	ganttMarginL = 84
	ganttMarginR = 150
	ganttMarginT = 44
	ganttMarginB = 52
	ganttWidth   = 860
)

// GanttSVG renders the chart as an SVG document. Height grows with the
// lane count so dense clusters stay readable.
func GanttSVG(g Gantt) string {
	lanes := len(g.Lanes)
	if lanes == 0 {
		lanes = 1
	}
	height := ganttMarginT + lanes*ganttLaneH + ganttMarginB

	xmax := 0.0
	for _, s := range g.Spans {
		if s.End > xmax {
			xmax = s.End
		}
	}
	for _, m := range g.Marks {
		if m.X > xmax {
			xmax = m.X
		}
	}
	if xmax <= 0 {
		xmax = 1
	}

	plotW := float64(ganttWidth - ganttMarginL - ganttMarginR)
	px := func(x float64) float64 { return ganttMarginL + x/xmax*plotW }
	laneTop := func(l int) float64 { return float64(ganttMarginT + l*ganttLaneH) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="sans-serif">`+"\n",
		ganttWidth, height, ganttWidth, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", ganttWidth, height)
	fmt.Fprintf(&b, `<text x="%d" y="24" font-size="15" text-anchor="middle">%s</text>`+"\n", ganttWidth/2, esc(g.Title))

	// Lane bands and labels.
	for i, name := range g.Lanes {
		y := laneTop(i)
		if i%2 == 1 {
			fmt.Fprintf(&b, `<rect x="%d" y="%.1f" width="%.1f" height="%d" fill="#f6f6f6"/>`+"\n",
				ganttMarginL, y, plotW, ganttLaneH)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="12" text-anchor="end">%s</text>`+"\n",
			ganttMarginL-8, y+float64(ganttLaneH)/2+4, esc(name))
	}

	// Time axis with ticks.
	axisY := ganttMarginT + lanes*ganttLaneH
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		ganttMarginL, axisY, ganttWidth-ganttMarginR, axisY)
	step := niceStep(xmax / 6)
	for v := 0.0; v <= xmax+1e-9; v += step {
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="#ddd"/>`+"\n",
			px(v), ganttMarginT, px(v), axisY)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(v), axisY+16, trimFloat(v))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(ganttMarginL+ganttWidth-ganttMarginR)/2, height-12, esc(g.XLabel))

	// Bars. Sub-pixel spans are widened to a visible sliver.
	for _, s := range g.Spans {
		lane := s.Lane
		if lane < 0 || lane >= lanes {
			continue
		}
		x0, x1 := px(s.Start), px(s.End)
		w := math.Max(x1-x0, 1.2)
		y := laneTop(lane) + float64(ganttLaneH-ganttBarH)/2
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%d" fill="%s" stroke="#fff" stroke-width="0.5">`,
			x0, y, w, ganttBarH, s.Color)
		if s.Label != "" {
			fmt.Fprintf(&b, `<title>%s</title>`, esc(s.Label))
		}
		b.WriteString("</rect>\n")
	}

	// Marks: full-height dashed verticals.
	for _, m := range g.Marks {
		color := m.Color
		if color == "" {
			color = "#c0392b"
		}
		fmt.Fprintf(&b, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="%s" stroke-width="1.5" stroke-dasharray="5 3"/>`+"\n",
			px(m.X), ganttMarginT, px(m.X), axisY, color)
		if m.Label != "" {
			fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
				px(m.X), ganttMarginT-6, color, esc(m.Label))
		}
	}

	// Legend.
	for i, k := range g.Keys {
		y := ganttMarginT + 20*i
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="14" height="10" fill="%s"/>`+"\n", ganttWidth-ganttMarginR+12, y, k.Color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="12">%s</text>`+"\n", ganttWidth-ganttMarginR+32, y+9, esc(k.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}
