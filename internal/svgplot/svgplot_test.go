package svgplot

import (
	"encoding/xml"
	"math"
	"strings"
	"testing"
)

func lineFixture() Chart {
	return Chart{
		Title:  "Figure 9: self-join speedup",
		XLabel: "# Nodes",
		YLabel: "Time (seconds)",
		X:      []float64{2, 4, 6, 8, 10},
		Series: []Series{
			{Name: "BTO-BK-BRJ", Y: []float64{0.50, 0.35, 0.31, 0.28, 0.25}},
			{Name: "BTO-PK-OPRJ", Y: []float64{0.50, 0.34, math.NaN(), 0.28, 0.26}},
		},
	}
}

func TestLineWellFormedXML(t *testing.T) {
	svg := Line(lineFixture())
	var any struct{}
	if err := xml.Unmarshal([]byte(svg), &any); err != nil {
		t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
	}
}

func TestLineContent(t *testing.T) {
	svg := Line(lineFixture())
	for _, want := range []string{
		"Figure 9: self-join speedup",
		"BTO-BK-BRJ",
		"BTO-PK-OPRJ",
		"# Nodes",
		"Time (seconds)",
		"<path",
		"<circle",
		"✕", // the NaN marker
	} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// Two series → two paths.
	if got := strings.Count(svg, "<path"); got != 2 {
		t.Fatalf("paths = %d, want 2", got)
	}
	// 9 drawable points (10 minus the NaN).
	if got := strings.Count(svg, "<circle"); got != 9 {
		t.Fatalf("circles = %d, want 9", got)
	}
}

func TestLineDegenerateInputs(t *testing.T) {
	// Empty chart must not panic or divide by zero.
	svg := Line(Chart{Title: "empty"})
	if !strings.Contains(svg, "</svg>") {
		t.Fatal("no closing tag")
	}
	// Single constant point.
	svg = Line(Chart{X: []float64{5}, Series: []Series{{Name: "s", Y: []float64{3}}}})
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Fatalf("degenerate chart produced NaN/Inf coordinates:\n%s", svg)
	}
}

func TestLineEscapesLabels(t *testing.T) {
	svg := Line(Chart{Title: `<script>&"`, X: []float64{1}, Series: []Series{{Name: "a&b", Y: []float64{1}}}})
	if strings.Contains(svg, "<script>") {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(svg, "a&amp;b") {
		t.Fatal("series name not escaped")
	}
}

func barsFixture() StackedBars {
	return StackedBars{
		Title:  "Figure 8: self-join total time",
		YLabel: "Time (seconds)",
		Groups: []string{"x5", "x10", "x25"},
		Bars:   []string{"BTO-BK-BRJ", "BTO-PK-OPRJ"},
		Layers: []string{"stage1", "stage2", "stage3"},
		Value: [][][]float64{
			{{0.08, 0.06, 0.06}, {0.08, 0.07, 0.06}},
			{{0.10, 0.07, 0.08}, {0.10, 0.07, 0.09}},
			{{0.12, 0.12, 0.12}, {math.NaN(), math.NaN(), math.NaN()}},
		},
	}
}

func TestBarsWellFormedXML(t *testing.T) {
	svg := Bars(barsFixture())
	var any struct{}
	if err := xml.Unmarshal([]byte(svg), &any); err != nil {
		t.Fatalf("SVG is not well-formed XML: %v\n%s", err, svg)
	}
}

func TestBarsContent(t *testing.T) {
	svg := Bars(barsFixture())
	for _, want := range []string{"x25", "stage2", "OOM", "<rect"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	// 5 intact bars × 3 layers + background rect.
	if got := strings.Count(svg, "<rect"); got < 16 {
		t.Fatalf("rects = %d, want >= 16", got)
	}
}

func TestNiceStep(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0.13, 0.1}, {0.4, 0.5}, {3, 2}, {8, 10}, {0, 1}, {120, 100},
	}
	for _, c := range cases {
		if got := niceStep(c.in); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("niceStep(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(2.50) != "2.5" || trimFloat(2.00) != "2" || trimFloat(0.25) != "0.25" {
		t.Fatalf("trimFloat wrong: %q %q %q", trimFloat(2.50), trimFloat(2.00), trimFloat(0.25))
	}
}
