// Package datagen generates the synthetic bibliographic corpora the
// experiments run on — the substitute for the paper's DBLP and CITESEERX
// dumps (which are ~1.2M/1.3M-record XML files we do not ship).
//
// Generated corpora reproduce the properties the join algorithms are
// sensitive to: Zipf-skewed token frequencies, the paper's record shape
// (RID, title, authors, rest), contrasting record lengths (DBLP-like
// ≈ 260 bytes vs CITESEERX-like ≈ 1.4 KB with abstracts), and a
// configurable rate of near-duplicate records so the join result is
// non-trivial.
//
// Increase implements the paper's §6 dataset-scaling method verbatim:
// each ×n copy replaces every title/author token with the token n
// positions after it in the increasing-frequency token order, so the
// token dictionary stays constant while the join-result cardinality grows
// linearly with the dataset.
package datagen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"fuzzyjoin/internal/records"
	"fuzzyjoin/internal/tokenize"
)

// Style selects the corpus shape.
type Style int

const (
	// DBLPLike records average ~260 bytes: title, authors, and a short
	// "rest" (venue/year).
	DBLPLike Style = iota
	// CiteseerLike records average ~1.4 KB: DBLP-like plus an abstract
	// and reference URLs in the rest field.
	CiteseerLike
)

func (s Style) String() string {
	if s == CiteseerLike {
		return "citeseerx-like"
	}
	return "dblp-like"
}

// Spec configures a corpus.
type Spec struct {
	// Records is the corpus size.
	Records int
	// Seed makes generation deterministic.
	Seed int64
	// Style selects DBLP-like or CITESEERX-like records.
	Style Style
	// VocabSize is the token dictionary size. Defaults to 8192.
	VocabSize int
	// NearDupRate is the fraction of records generated as light
	// perturbations of an earlier record (the near-duplicates a
	// similarity join exists to find). Defaults to 0.2; set negative
	// for none.
	NearDupRate float64
	// StartRID numbers records from this RID (default 1).
	StartRID uint64
	// ZipfSkew is the Zipf exponent of the title-token frequency
	// distribution; larger values concentrate more mass on the most
	// frequent tokens. Must be > 1; defaults to 1.3 (the shape the
	// repository has always generated).
	ZipfSkew float64
	// TitleMin and TitleMax bound the title length in words (the
	// record-length distribution knob: titles are the join attribute, so
	// these control token-set sizes). Defaults 6 and 12, the historical
	// range. TitleMax < TitleMin is treated as TitleMin.
	TitleMin, TitleMax int
}

func (s *Spec) fillDefaults() {
	if s.VocabSize <= 0 {
		s.VocabSize = 8192
	}
	if s.NearDupRate == 0 {
		s.NearDupRate = 0.2
	}
	if s.NearDupRate < 0 {
		s.NearDupRate = 0
	}
	if s.StartRID == 0 {
		s.StartRID = 1
	}
	if s.ZipfSkew <= 1 {
		s.ZipfSkew = 1.3
	}
	if s.TitleMin <= 0 {
		s.TitleMin = 6
	}
	if s.TitleMax < s.TitleMin {
		if s.TitleMax <= 0 {
			s.TitleMax = s.TitleMin + 6
		} else {
			s.TitleMax = s.TitleMin
		}
	}
	// sampleTitle draws distinct words, so titles must stay well under
	// the dictionary size or generation would spin rejecting duplicates.
	if limit := s.VocabSize / 2; s.TitleMax > limit {
		s.TitleMax = limit
		if s.TitleMin > s.TitleMax {
			s.TitleMin = s.TitleMax
		}
	}
}

var syllables = []string{
	"ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu",
	"na", "pe", "qui", "ro", "su", "ta", "ve", "wi", "xo", "zu",
}

// word deterministically synthesizes the i-th vocabulary word: the
// base-20 syllable digits of i, padded to at least two syllables so word
// lengths resemble natural text. Padding cannot collide with natural
// two-digit ids because those never have a zero high digit.
func word(i int) string {
	var b strings.Builder
	n := i
	digits := 0
	for {
		b.WriteString(syllables[n%len(syllables)])
		n /= len(syllables)
		digits++
		if n == 0 {
			break
		}
	}
	if digits < 2 {
		b.WriteString(syllables[0])
	}
	return b.String()
}

// surname synthesizes author names. The "Mc" prefix keeps the surname
// vocabulary disjoint from title words (no syllable starts with "mc"),
// as author names and title words barely overlap in real bibliographies.
func surname(i int) string {
	return "Mc" + word(i)
}

// Generate builds a deterministic corpus.
func Generate(spec Spec) []records.Record {
	spec.fillDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	// Zipf over the vocabulary: rank 0 most frequent, heavy skew like
	// real word frequencies.
	zipf := rand.NewZipf(rng, spec.ZipfSkew, 4, uint64(spec.VocabSize-1))
	authorZipf := rand.NewZipf(rng, 1.2, 8, uint64(spec.VocabSize/8))

	out := make([]records.Record, 0, spec.Records)
	for i := 0; i < spec.Records; i++ {
		rid := spec.StartRID + uint64(i)
		if len(out) > 0 && rng.Float64() < spec.NearDupRate {
			out = append(out, perturb(rng, zipf, out[rng.Intn(len(out))], rid))
			continue
		}
		out = append(out, fresh(rng, zipf, authorZipf, spec, rid))
	}
	return out
}

// sampleTitle draws n distinct Zipf words (titles rarely repeat a word,
// and duplicate-free join attributes keep the ×n Increase shift an exact
// dictionary bijection).
func sampleTitle(rng *rand.Rand, zipf *rand.Zipf, n int) string {
	words := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for len(words) < n {
		w := word(int(zipf.Uint64()))
		if !seen[w] {
			seen[w] = true
			words = append(words, w)
		}
	}
	return strings.Join(words, " ")
}

func fresh(rng *rand.Rand, zipf, authorZipf *rand.Zipf, spec Spec, rid uint64) records.Record {
	style := spec.Style
	title := sampleTitle(rng, zipf, spec.TitleMin+rng.Intn(spec.TitleMax-spec.TitleMin+1))
	nAuthors := 1 + rng.Intn(4)
	authors := make([]string, 0, nAuthors)
	seen := map[string]bool{}
	for len(authors) < nAuthors {
		name := surname(int(authorZipf.Uint64())) + " " + surname(int(authorZipf.Uint64()))
		if !seen[name] {
			seen[name] = true
			authors = append(authors, name)
		}
	}
	rest := fmt.Sprintf("proceedings-of-%s-%s volume %d number %d year %d pages %d-%d publisher %s",
		word(rng.Intn(400)), word(rng.Intn(400)), 1+rng.Intn(40), 1+rng.Intn(12),
		1995+rng.Intn(20), 1+rng.Intn(400), 410+rng.Intn(500), word(rng.Intn(200)))
	if style == CiteseerLike {
		// Abstract ≈ 150 words plus reference URLs: ~1.1 KB extra,
		// matching the paper's ~5× record-size ratio.
		abstract := sampleTitle(rng, zipf, 150)
		var urls []string
		for i := 0; i < 3+rng.Intn(4); i++ {
			urls = append(urls, "http://cite.example/"+word(rng.Intn(5000))+word(rng.Intn(5000)))
		}
		rest = rest + " " + abstract + " " + strings.Join(urls, " ")
	}
	return records.Record{
		RID:    rid,
		Fields: []string{title, strings.Join(authors, ", "), rest},
	}
}

// perturb derives a near-duplicate: the base record with a word edited,
// dropped, or added in the title — similar enough to join at τ = 0.8
// most of the time.
func perturb(rng *rand.Rand, zipf *rand.Zipf, base records.Record, rid uint64) records.Record {
	title := strings.Fields(base.Fields[records.FieldTitle])
	if len(title) > 1 {
		switch rng.Intn(3) {
		case 0:
			title[rng.Intn(len(title))] = word(int(zipf.Uint64()))
		case 1:
			i := rng.Intn(len(title))
			title = append(title[:i], title[i+1:]...)
		case 2:
			title = append(title, word(int(zipf.Uint64())))
		}
	}
	return records.Record{
		RID: rid,
		Fields: []string{
			strings.Join(title, " "),
			base.Fields[records.FieldAuthors],
			base.Fields[records.FieldRest],
		},
	}
}

// Increase scales a corpus ×factor using the paper's method: copy c
// (1 ≤ c < factor) replaces each title/author token with the token c
// positions later in the increasing-frequency token order (wrapping at
// the end, which keeps the dictionary exactly constant). The original
// records come first; copies are renumbered after them.
func Increase(recs []records.Record, factor int) []records.Record {
	return IncreaseWithOrder(recs, factor, tokenOrder(recs))
}

// SharedOrder computes one increasing-frequency token order over several
// corpora. Scaling two relations of an R-S join with the same order keeps
// cross-relation similar pairs similar in every copy, so the R-S join
// result also grows linearly (the property the paper verifies for its
// scaled datasets).
func SharedOrder(corpora ...[]records.Record) []string {
	var all []records.Record
	for _, c := range corpora {
		all = append(all, c...)
	}
	return tokenOrder(all)
}

// IncreaseWithOrder is Increase with an explicit token order (see
// SharedOrder).
func IncreaseWithOrder(recs []records.Record, factor int, order []string) []records.Record {
	if factor <= 1 {
		return recs
	}
	rank := make(map[string]int, len(order))
	for i, t := range order {
		rank[t] = i
	}

	out := make([]records.Record, 0, len(recs)*factor)
	out = append(out, recs...)
	nextRID := maxRID(recs) + 1
	for c := 1; c < factor; c++ {
		for _, r := range recs {
			out = append(out, shiftRecord(r, order, rank, c, nextRID))
			nextRID++
		}
	}
	return out
}

// tokenOrder computes the increasing-frequency order of the title/author
// tokens, ties broken by token text (matching Stage 1's determinism).
func tokenOrder(recs []records.Record) []string {
	freq := map[string]int{}
	for _, r := range recs {
		for _, f := range []int{records.FieldTitle, records.FieldAuthors} {
			for _, w := range strings.Fields(r.Fields[f]) {
				freq[normalize(w)]++
			}
		}
	}
	order := make([]string, 0, len(freq))
	for t := range freq {
		order = append(order, t)
	}
	sort.Slice(order, func(i, j int) bool {
		if freq[order[i]] != freq[order[j]] {
			return freq[order[i]] < freq[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

// normalize matches the word tokenizer's cleaning so shifted tokens stay
// within the dictionary.
func normalize(w string) string {
	return strings.ToLower(strings.Trim(w, ".,;:!?()\"'"))
}

func shiftRecord(r records.Record, order []string, rank map[string]int, c int, rid uint64) records.Record {
	shift := func(field string) string {
		ws := strings.Fields(field)
		for i, w := range ws {
			if idx, ok := rank[normalize(w)]; ok {
				ws[i] = order[(idx+c)%len(order)]
			}
		}
		return strings.Join(ws, " ")
	}
	return records.Record{
		RID: rid,
		Fields: []string{
			shift(r.Fields[records.FieldTitle]),
			shift(r.Fields[records.FieldAuthors]),
			r.Fields[records.FieldRest],
		},
	}
}

func maxRID(recs []records.Record) uint64 {
	var m uint64
	for _, r := range recs {
		if r.RID > m {
			m = r.RID
		}
	}
	return m
}

// GenerateOverlapping builds a corpus where a fraction of records are
// perturbed copies of records from base — the cross-relation
// near-duplicates an R-S join exists to find (the paper's DBLP and
// CITESEERX corpora share many publications). The remaining records are
// fresh per spec.
func GenerateOverlapping(base []records.Record, spec Spec, overlapRate float64) []records.Record {
	spec.fillDefaults()
	rng := rand.New(rand.NewSource(spec.Seed + 0x5eed))
	zipf := rand.NewZipf(rng, spec.ZipfSkew, 4, uint64(spec.VocabSize-1))
	fresh := Generate(spec)
	out := make([]records.Record, len(fresh))
	for i := range fresh {
		if len(base) > 0 && rng.Float64() < overlapRate {
			src := base[rng.Intn(len(base))]
			p := perturb(rng, zipf, src, fresh[i].RID)
			// Keep the target style's rest field (e.g. the CITESEERX
			// abstract) — only the join attribute overlaps.
			p.Fields[records.FieldRest] = fresh[i].Fields[records.FieldRest]
			out[i] = p
			continue
		}
		out[i] = fresh[i]
	}
	return out
}

// Lines renders records in the Text input format.
func Lines(recs []records.Record) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Line()
	}
	return out
}

// Dictionary returns the distinct title/author tokens of a corpus (used
// by tests to verify Increase keeps the dictionary constant).
func Dictionary(recs []records.Record) map[string]bool {
	out := map[string]bool{}
	w := tokenize.Word{}
	for _, r := range recs {
		for _, t := range w.Tokenize(r.JoinAttr(records.FieldTitle, records.FieldAuthors)) {
			out[t] = true
		}
	}
	return out
}

// AvgRecordBytes reports the mean rendered record size (used to check
// corpus shape against the paper's 259 B / 1374 B averages).
func AvgRecordBytes(recs []records.Record) int {
	if len(recs) == 0 {
		return 0
	}
	n := 0
	for _, r := range recs {
		n += len(r.Line())
	}
	return n / len(recs)
}
