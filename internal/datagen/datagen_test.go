package datagen

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"fuzzyjoin/internal/ppjoin"
	"fuzzyjoin/internal/records"
	"fuzzyjoin/internal/simfn"
	"fuzzyjoin/internal/tokenize"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Records: 50, Seed: 7})
	b := Generate(Spec{Records: 50, Seed: 7})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different corpora")
	}
	c := Generate(Spec{Records: 50, Seed: 8})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestGenerateShape(t *testing.T) {
	recs := Generate(Spec{Records: 200, Seed: 1})
	if len(recs) != 200 {
		t.Fatalf("len = %d", len(recs))
	}
	for i, r := range recs {
		if r.RID != uint64(i+1) {
			t.Fatalf("record %d has RID %d", i, r.RID)
		}
		if len(r.Fields) != records.NumFields {
			t.Fatalf("record %d has %d fields", i, len(r.Fields))
		}
		if r.Fields[records.FieldTitle] == "" || r.Fields[records.FieldAuthors] == "" {
			t.Fatalf("record %d has empty join fields: %+v", i, r)
		}
		if _, err := records.ParseLine(r.Line()); err != nil {
			t.Fatalf("record %d does not round-trip: %v", i, err)
		}
	}
}

func TestRecordSizesMatchStyles(t *testing.T) {
	dblp := AvgRecordBytes(Generate(Spec{Records: 300, Seed: 2, Style: DBLPLike}))
	cite := AvgRecordBytes(Generate(Spec{Records: 300, Seed: 2, Style: CiteseerLike}))
	// Paper averages: 259 B and 1374 B (ratio ≈ 5.3). Accept generous
	// bands around the shape.
	if dblp < 100 || dblp > 500 {
		t.Fatalf("DBLP-like average %d B outside [100, 500]", dblp)
	}
	if cite < 800 || cite > 2500 {
		t.Fatalf("CITESEERX-like average %d B outside [800, 2500]", cite)
	}
	if cite < 3*dblp {
		t.Fatalf("style size ratio too small: %d vs %d", cite, dblp)
	}
}

func TestNearDuplicatesProduceJoinResults(t *testing.T) {
	recs := Generate(Spec{Records: 300, Seed: 3})
	if countPairs(recs) == 0 {
		t.Fatal("corpus has no similar pairs at τ=0.8")
	}
	none := Generate(Spec{Records: 300, Seed: 3, NearDupRate: -1})
	if countPairs(none) > countPairs(recs)/4 {
		t.Fatalf("NearDupRate<0 corpus has too many pairs: %d vs %d",
			countPairs(none), countPairs(recs))
	}
}

// countPairs runs a single-node PPJoin+ self-join at τ=0.8.
func countPairs(recs []records.Record) int {
	w := tokenize.Word{}
	freq := map[string]int{}
	var tokSets [][]string
	for _, r := range recs {
		toks := w.Tokenize(r.JoinAttr(records.FieldTitle, records.FieldAuthors))
		tokSets = append(tokSets, toks)
		for _, t := range toks {
			freq[t]++
		}
	}
	var vocab []string
	for t := range freq {
		vocab = append(vocab, t)
	}
	// Order by (freq, token).
	for i := 1; i < len(vocab); i++ {
		v := vocab[i]
		j := i - 1
		for j >= 0 && (freq[vocab[j]] > freq[v] || (freq[vocab[j]] == freq[v] && vocab[j] > v)) {
			vocab[j+1] = vocab[j]
			j--
		}
		vocab[j+1] = v
	}
	order := tokenize.NewOrder(vocab)
	items := make([]ppjoin.Item, len(recs))
	for i, toks := range tokSets {
		_, ranks := order.SortByRank(toks)
		items[i] = ppjoin.Item{RID: recs[i].RID, Ranks: ranks}
	}
	n := 0
	ppjoin.SelfJoin(items, ppjoin.Options{Fn: simfn.Jaccard, Threshold: 0.8},
		func(records.RIDPair) { n++ })
	return n
}

func TestIncreaseSizeAndRIDs(t *testing.T) {
	recs := Generate(Spec{Records: 40, Seed: 4})
	inc := Increase(recs, 3)
	if len(inc) != 120 {
		t.Fatalf("len = %d, want 120", len(inc))
	}
	seen := map[uint64]bool{}
	for _, r := range inc {
		if seen[r.RID] {
			t.Fatalf("duplicate RID %d", r.RID)
		}
		seen[r.RID] = true
	}
	if !reflect.DeepEqual(inc[:40], recs) {
		t.Fatal("originals not preserved at the front")
	}
	if reflect.DeepEqual(Increase(recs, 1), recs) != true {
		t.Fatal("factor 1 must be the identity")
	}
}

// TestIncreaseKeepsDictionaryConstant: the paper's stated goal — "We
// maintained a roughly constant token dictionary".
func TestIncreaseKeepsDictionaryConstant(t *testing.T) {
	recs := Generate(Spec{Records: 120, Seed: 5})
	base := Dictionary(recs)
	for _, factor := range []int{2, 5} {
		inc := Dictionary(Increase(recs, factor))
		// The shift is a bijection on the dictionary, so the token set
		// stays "roughly constant" (the paper's wording): the only
		// growth is occurrence-suffix variants ("t~2") of shifted
		// within-record duplicates.
		growth := float64(len(inc)-len(base)) / float64(len(base))
		if growth > 0.05 {
			t.Fatalf("×%d dictionary grew %d → %d (%.1f%%)",
				factor, len(base), len(inc), 100*growth)
		}
	}
}

// TestIncreaseJoinGrowsLinearly: the paper's second goal — "the
// cardinality of join results ... increased linearly".
func TestIncreaseJoinGrowsLinearly(t *testing.T) {
	recs := Generate(Spec{Records: 150, Seed: 6})
	base := countPairs(recs)
	if base == 0 {
		t.Fatal("base corpus has no pairs")
	}
	for _, factor := range []int{2, 3} {
		got := countPairs(Increase(recs, factor))
		lo, hi := factor*base, factor*base+factor*base/4
		if got < lo || got > hi {
			t.Fatalf("×%d pairs = %d, want within [%d, %d] (≈ linear from %d)",
				factor, got, lo, hi, base)
		}
	}
}

func TestIncreasePreservesWithinCopySimilarity(t *testing.T) {
	// A near-duplicate pair in the original must remain a near-duplicate
	// pair in every shifted copy (same similarity).
	recs := []records.Record{
		{RID: 1, Fields: []string{"alpha beta gamma delta epsilon", "zeta eta", ""}},
		{RID: 2, Fields: []string{"alpha beta gamma delta epsilon", "zeta eta", ""}},
	}
	inc := Increase(recs, 2)
	c1, c2 := inc[2], inc[3]
	if c1.Fields[0] == recs[0].Fields[0] {
		t.Fatal("copy not shifted")
	}
	if c1.Fields[0] != c2.Fields[0] || c1.Fields[1] != c2.Fields[1] {
		t.Fatalf("shifted duplicates diverged: %+v vs %+v", c1, c2)
	}
}

func TestLines(t *testing.T) {
	recs := Generate(Spec{Records: 3, Seed: 9})
	lines := Lines(recs)
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, l := range lines {
		got, err := records.ParseLine(l)
		if err != nil || got.RID != recs[i].RID {
			t.Fatalf("line %d: %v %v", i, got, err)
		}
	}
}

func TestStartRID(t *testing.T) {
	recs := Generate(Spec{Records: 5, Seed: 10, StartRID: 1000})
	if recs[0].RID != 1000 || recs[4].RID != 1004 {
		t.Fatalf("RIDs = %d..%d", recs[0].RID, recs[4].RID)
	}
}

func TestWordSynthesis(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 10000; i++ {
		w := word(i)
		if w == "" || seen[w] {
			t.Fatalf("word(%d) = %q (duplicate or empty)", i, w)
		}
		seen[w] = true
	}
}

// TestSpecShapeKnobs: the conformance workload generator drives these.
func TestSpecShapeKnobs(t *testing.T) {
	// Title lengths honor [TitleMin, TitleMax].
	recs := Generate(Spec{Records: 200, Seed: 30, NearDupRate: -1, TitleMin: 3, TitleMax: 5})
	for _, r := range recs {
		n := len(strings.Fields(r.Fields[records.FieldTitle]))
		if n < 3 || n > 5 {
			t.Fatalf("title length %d outside [3, 5]: %q", n, r.Fields[records.FieldTitle])
		}
	}
	// A small vocabulary clamps the title range instead of spinning.
	tiny := Generate(Spec{Records: 20, Seed: 31, VocabSize: 16, NearDupRate: -1, TitleMin: 10, TitleMax: 40})
	for _, r := range tiny {
		if n := len(strings.Fields(r.Fields[records.FieldTitle])); n > 8 {
			t.Fatalf("title length %d exceeds vocab/2 clamp", n)
		}
	}
	// Higher skew concentrates more mass on the most frequent token.
	share := func(skew float64) float64 {
		w := tokenize.Word{}
		freq := map[string]int{}
		total := 0
		for _, r := range Generate(Spec{Records: 500, Seed: 32, NearDupRate: -1, ZipfSkew: skew}) {
			for _, tok := range w.Tokenize(r.JoinAttr(records.FieldTitle)) {
				freq[tok]++
				total++
			}
		}
		max := 0
		for _, n := range freq {
			if n > max {
				max = n
			}
		}
		return float64(max) / float64(total)
	}
	if lo, hi := share(1.1), share(2.5); hi <= lo {
		t.Fatalf("skew 2.5 top-token share %.3f not above skew 1.1 share %.3f", hi, lo)
	}
	// Defaults are unchanged: zero-value shape knobs reproduce the
	// historical generator byte-for-byte.
	a := Lines(Generate(Spec{Records: 40, Seed: 33}))
	b := Lines(Generate(Spec{Records: 40, Seed: 33, ZipfSkew: 1.3, TitleMin: 6, TitleMax: 12}))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("explicit default shape knobs changed generation")
	}
}

func BenchmarkGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Generate(Spec{Records: 1000, Seed: int64(i)})
	}
}

func BenchmarkIncrease(b *testing.B) {
	recs := Generate(Spec{Records: 1000, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Increase(recs, 5)
	}
}

// TestTokenFrequencySkew: the corpus must show the heavy-tailed token
// frequencies the prefix filter depends on (rare tokens for prefixes,
// common tokens avoided) — a Zipf-like shape, not uniform.
func TestTokenFrequencySkew(t *testing.T) {
	recs := Generate(Spec{Records: 2000, Seed: 21})
	w := tokenize.Word{}
	freq := map[string]int{}
	total := 0
	for _, r := range recs {
		for _, tok := range w.Tokenize(r.JoinAttr(records.FieldTitle, records.FieldAuthors)) {
			freq[tok]++
			total++
		}
	}
	counts := make([]int, 0, len(freq))
	for _, n := range freq {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))

	// Heavy head: the top 1% of tokens carry a large share of mass.
	head := 0
	for _, n := range counts[:len(counts)/100+1] {
		head += n
	}
	if share := float64(head) / float64(total); share < 0.15 {
		t.Fatalf("top-1%% token share %.2f too uniform for Zipf-like data", share)
	}
	// Long tail: a large fraction of tokens are rare (frequency <= 2) —
	// these are what prefixes are made of.
	rare := 0
	for _, n := range counts {
		if n <= 2 {
			rare++
		}
	}
	if share := float64(rare) / float64(len(counts)); share < 0.3 {
		t.Fatalf("rare-token share %.2f too small", share)
	}
}
