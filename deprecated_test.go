//lint:file-ignore SA1019 This file exists to pin the behavior of the
// deprecated wrappers until they are removed.

package fuzzyjoin_test

import (
	"testing"

	"fuzzyjoin"
)

// The deprecated entry points are thin wrappers over Join; these tests
// pin that they keep answering until the next major version removes
// them (see the package deprecation policy).

func TestDeprecatedSelfJoinRecords(t *testing.T) {
	pairs, err := fuzzyjoin.SelfJoinRecords(pubs(), fuzzyjoin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
}

func TestDeprecatedRSJoinRecords(t *testing.T) {
	r := pubs()[:3]
	s := pubs()[2:]
	for i := range s {
		s[i].RID += 100
	}
	pairs, err := fuzzyjoin.RSJoinRecords(r, s, fuzzyjoin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
}

func TestDeprecatedFileJoins(t *testing.T) {
	fs := fuzzyjoin.NewFS(2)
	if err := fuzzyjoin.WriteRecords(fs, "r", pubs()); err != nil {
		t.Fatal(err)
	}
	if err := fuzzyjoin.WriteRecords(fs, "s", pubs()[2:]); err != nil {
		t.Fatal(err)
	}
	self, err := fuzzyjoin.SelfJoin(fuzzyjoin.Config{FS: fs, Work: "w1"}, "r")
	if err != nil {
		t.Fatal(err)
	}
	if self.Pairs != 2 {
		t.Fatalf("self pairs = %d, want 2", self.Pairs)
	}
	rs, err := fuzzyjoin.RSJoin(fuzzyjoin.Config{FS: fs, Work: "w2"}, "r", "s")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Pairs == 0 {
		t.Fatal("rs join found no pairs")
	}
}
