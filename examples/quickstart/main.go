// Quickstart: find similar publication records with the in-memory API.
//
//	go run ./examples/quickstart
//
// The zero Config runs the paper's recommended setup: word tokens over
// title+authors, Jaccard at τ = 0.80, the BTO-BK-BRJ pipeline.
package main

import (
	"context"
	"fmt"
	"log"

	"fuzzyjoin"
)

func main() {
	pubs := []fuzzyjoin.Record{
		rec(1, "Efficient Parallel Set-Similarity Joins Using MapReduce", "Vernica Carey Li"),
		rec(2, "Efficient Parallel Set Similarity Joins using MapReduce", "Vernica Carey Li"),
		rec(3, "A Comparison of Approaches to Large-Scale Data Analysis", "Pavlo Paulson Rasin Abadi"),
		rec(4, "Comparison of Approaches to Large Scale Data Analysis", "Pavlo Paulson Rasin Abadi"),
		rec(5, "MapReduce: Simplified Data Processing on Large Clusters", "Dean Ghemawat"),
		rec(6, "Bigtable: A Distributed Storage System for Structured Data", "Chang Dean Ghemawat"),
	}

	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{Records: pubs})
	if err != nil {
		log.Fatal(err)
	}
	pairs := res.Joined

	fmt.Printf("%d near-duplicate pairs at Jaccard >= 0.80:\n\n", len(pairs))
	for _, p := range pairs {
		fmt.Printf("  sim=%.3f\n    [%d] %s\n    [%d] %s\n\n",
			p.Sim,
			p.Left.RID, p.Left.Fields[fuzzyjoin.FieldTitle],
			p.Right.RID, p.Right.Fields[fuzzyjoin.FieldTitle])
	}

	// The same join at a looser threshold with the cosine function,
	// running the fastest combination the paper measured (BTO-PK-OPRJ).
	loose, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{
			Fn:         fuzzyjoin.Cosine,
			Threshold:  0.6,
			Kernel:     fuzzyjoin.PK,
			RecordJoin: fuzzyjoin.OPRJ,
		},
		Records: pubs,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cosine >= 0.60 finds %d pairs\n", len(loose.Joined))
}

func rec(rid uint64, title, authors string) fuzzyjoin.Record {
	return fuzzyjoin.Record{RID: rid, Fields: []string{title, authors, ""}}
}
