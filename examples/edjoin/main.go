// Edjoin: approximate string matching under edit distance — the
// application the paper's footnote 1 mentions. Product titles with typos
// are matched within edit distance 2 using q-gram count filtering and
// banded verification, both single-node and as MapReduce jobs on the
// bundled engine.
//
//	go run ./examples/edjoin
package main

import (
	"fmt"
	"log"

	"fuzzyjoin/internal/dfs"
	"fuzzyjoin/internal/editdist"
	"fuzzyjoin/internal/mapreduce"
)

func main() {
	titles := []string{
		"wireless noise cancelling headphones",
		"wireless noise canceling headphones", // 1 edit
		"wireless noise cancelling headphone", // 1 edit
		"bluetooth speaker waterproof",
		"bluetooth speaker watreproof", // transposition = 2 edits
		"mechanical keyboard rgb",
		"mechanical keyboard rgb", // identical
		"usb c charging cable 2m",
		"completely unrelated garden hose",
	}
	o := editdist.Options{K: 2, Q: 3}

	// Single-node kernel.
	pairs := editdist.SelfJoin(titles, o)
	fmt.Printf("single-node ed-join (K=%d): %d matches\n", o.K, len(pairs))
	for _, p := range pairs {
		fmt.Printf("  d=%d  %q ~ %q\n", p.Dist, titles[p.I], titles[p.J])
	}

	// The same join as MapReduce jobs.
	fs := dfs.New(dfs.Options{Nodes: 2})
	lines := make([]string, len(titles))
	for i, s := range titles {
		lines[i] = fmt.Sprintf("%d\t%s", i, s)
	}
	if err := mapreduce.WriteTextFile(fs, "titles", lines); err != nil {
		log.Fatal(err)
	}
	outPrefix, ms, err := editdist.MapReduceSelfJoin(fs, "titles", "work", o, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	outLines, err := mapreduce.ReadLines(fs, outPrefix+"/")
	if err != nil {
		log.Fatal(err)
	}
	mrPairs := editdist.SortOutput(outLines)
	fmt.Printf("\nmapreduce ed-join: %d matches across %d jobs (identical result: %v)\n",
		len(mrPairs), len(ms), fmt.Sprint(mrPairs) == fmt.Sprint(pairs))
}
