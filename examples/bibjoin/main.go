// Bibjoin: R-S join of two bibliographic corpora — the paper's §6.2
// scenario (DBLP ⋈ CITESEERX) at example scale. The smaller relation (R)
// drives the token ordering, as §4 prescribes, and every joined pair
// carries the R record on the left.
//
//	go run ./examples/bibjoin
package main

import (
	"context"
	"fmt"
	"log"

	"fuzzyjoin"
	"fuzzyjoin/internal/datagen"
)

func main() {
	// A DBLP-like relation and a CITESEERX-like relation whose records
	// overlap it in ~50% of cases (the two real corpora index many of
	// the same publications).
	dblp := datagen.Generate(datagen.Spec{Records: 1500, Seed: 11, Style: datagen.DBLPLike})
	cite := datagen.GenerateOverlapping(dblp, datagen.Spec{
		Records:  1800,
		Seed:     12,
		Style:    datagen.CiteseerLike,
		StartRID: 1_000_000, // RID spaces may even collide; tags keep them apart
	}, 0.5)

	fmt.Printf("R (DBLP-like):      %d records, avg %d B\n", len(dblp), datagen.AvgRecordBytes(dblp))
	fmt.Printf("S (CITESEERX-like): %d records, avg %d B\n\n", len(cite), datagen.AvgRecordBytes(cite))

	fs := fuzzyjoin.NewFS(4)
	if err := fuzzyjoin.WriteRecords(fs, "dblp", dblp); err != nil {
		log.Fatal(err)
	}
	if err := fuzzyjoin.WriteRecords(fs, "cite", cite); err != nil {
		log.Fatal(err)
	}

	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{
			FS:          fs,
			Work:        "bibjoin",
			Kernel:      fuzzyjoin.PK,
			RecordJoin:  fuzzyjoin.BRJ, // the robust choice for large R-S joins (§6.2.3)
			NumReducers: 8,
			Parallelism: 4,
		},
		Input:  "dblp",
		InputS: "cite",
	})
	if err != nil {
		log.Fatal(err)
	}

	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("matched %d cross-corpus publication pairs at Jaccard >= 0.80\n\n", len(pairs))
	for i, p := range pairs {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(pairs)-5)
			break
		}
		fmt.Printf("  sim=%.3f  DBLP[%d] ↔ CITESEERX[%d]\n    %q\n    %q\n",
			p.Sim, p.Left.RID, p.Right.RID,
			p.Left.Fields[fuzzyjoin.FieldTitle],
			p.Right.Fields[fuzzyjoin.FieldTitle])
	}

	// Per-stage accounting, the way the paper reports its runs.
	fmt.Println("\nstage breakdown:")
	for _, st := range res.Stages {
		var shuffle int64
		for _, job := range st.Jobs {
			shuffle += job.TotalShuffleBytes()
		}
		fmt.Printf("  stage %d (%-4s): %d job(s), %6.1f KB shuffled, wall %v\n",
			st.Stage, st.Alg, len(st.Jobs), float64(shuffle)/1024, st.Wall.Round(1e6))
	}
}
