// Dedup: master-data-management style near-duplicate detection — the
// motivating application from the paper's introduction ("John W. Smith",
// "Smith, John", and "John William Smith" potentially referring to the
// same person).
//
// A synthetic bibliography with injected near-duplicates is self-joined
// on title+authors, and the similar pairs are clustered with union-find
// into duplicate groups, the way an entity-resolution pipeline would
// consume the join.
//
//	go run ./examples/dedup
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"fuzzyjoin"
	"fuzzyjoin/internal/datagen"
)

func main() {
	// 2000 DBLP-like records, ~20% of them perturbed copies of earlier
	// ones (the generator's near-duplicate injection).
	recs := datagen.Generate(datagen.Spec{Records: 2000, Seed: 7})

	fs := fuzzyjoin.NewFS(4)
	if err := fuzzyjoin.WriteRecords(fs, "bib", recs); err != nil {
		log.Fatal(err)
	}
	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{
			FS:          fs,
			Work:        "dedup",
			Kernel:      fuzzyjoin.PK, // the kernel the paper recommends
			NumReducers: 8,
			Parallelism: 4,
		},
		Input: "bib",
	})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		log.Fatal(err)
	}

	// Union-find over the similar pairs → duplicate clusters.
	parent := map[uint64]uint64{}
	var find func(uint64) uint64
	find = func(x uint64) uint64 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	for _, p := range pairs {
		a, b := find(p.Left.RID), find(p.Right.RID)
		if a != b {
			parent[a] = b
		}
	}
	clusters := map[uint64][]uint64{}
	for rid := range parent {
		root := find(rid)
		clusters[root] = append(clusters[root], rid)
	}

	sizes := map[int]int{}
	var biggest []uint64
	for _, members := range clusters {
		sizes[len(members)]++
		if len(members) > len(biggest) {
			biggest = members
		}
	}

	fmt.Printf("%d records → %d similar pairs → %d duplicate clusters\n\n",
		len(recs), len(pairs), len(clusters))
	var order []int
	for sz := range sizes {
		order = append(order, sz)
	}
	sort.Ints(order)
	for _, sz := range order {
		fmt.Printf("  clusters of size %d: %d\n", sz, sizes[sz])
	}

	sort.Slice(biggest, func(i, j int) bool { return biggest[i] < biggest[j] })
	fmt.Printf("\nlargest cluster (%d records):\n", len(biggest))
	byRID := map[uint64]fuzzyjoin.Record{}
	for _, r := range recs {
		byRID[r.RID] = r
	}
	for _, rid := range biggest {
		fmt.Printf("  [%4d] %s / %s\n", rid,
			byRID[rid].Fields[fuzzyjoin.FieldTitle],
			byRID[rid].Fields[fuzzyjoin.FieldAuthors])
	}
}
