// Recommend: user-similarity over preference bit vectors — the paper's
// introduction scenario ("a user with preference bit vector
// [1,0,0,1,1,0,1,0,0,1] possibly has similar interests to a user with
// preferences [1,0,0,0,1,0,1,0,1,1]"), used for making recommendations
// based on similar users.
//
// A bit vector is a set: the indices of its 1-bits. Each user becomes a
// record whose join attribute lists the interest domains they follow,
// and the set-similarity self-join finds the similar-taste pairs.
//
//	go run ./examples/recommend
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"

	"fuzzyjoin"
)

const domains = 64

func main() {
	rng := rand.New(rand.NewSource(99))

	// 1500 users in taste communities: members share a community profile
	// with personal variation.
	var recs []fuzzyjoin.Record
	var profiles [][]int
	for c := 0; c < 30; c++ {
		profiles = append(profiles, randomProfile(rng, 10+rng.Intn(8)))
	}
	for u := 1; u <= 1500; u++ {
		prof := profiles[rng.Intn(len(profiles))]
		bits := map[int]bool{}
		for _, d := range prof {
			if rng.Float64() < 0.9 { // drop a follow occasionally
				bits[d] = true
			}
		}
		for rng.Float64() < 0.2 { // pick up stray interests
			bits[rng.Intn(domains)] = true
		}
		recs = append(recs, fuzzyjoin.Record{
			RID:    uint64(u),
			Fields: []string{domainTokens(bits), fmt.Sprintf("user%d", u), ""},
		})
	}

	fs := fuzzyjoin.NewFS(4)
	if err := fuzzyjoin.WriteRecords(fs, "users", recs); err != nil {
		log.Fatal(err)
	}
	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{
			FS:   fs,
			Work: "rec",
			// Join on the interests field alone.
			JoinFields:  []int{fuzzyjoin.FieldTitle},
			Threshold:   0.8,
			Kernel:      fuzzyjoin.PK,
			NumReducers: 8,
			Parallelism: 4,
		},
		Input: "users",
	})
	if err != nil {
		log.Fatal(err)
	}
	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		log.Fatal(err)
	}

	// Recommendation counts: how many similar users each user has.
	neighbors := map[uint64]int{}
	for _, p := range pairs {
		neighbors[p.Left.RID]++
		neighbors[p.Right.RID]++
	}
	type uc struct {
		u uint64
		n int
	}
	var top []uc
	for u, n := range neighbors {
		top = append(top, uc{u, n})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].n != top[j].n {
			return top[i].n > top[j].n
		}
		return top[i].u < top[j].u
	})

	fmt.Printf("%d users → %d similar-taste pairs (Jaccard ≥ 0.80 on interest sets)\n\n",
		len(recs), len(pairs))
	fmt.Println("users with the most similar-taste neighbors:")
	for i, t := range top {
		if i == 5 {
			break
		}
		fmt.Printf("  user%-5d %3d neighbors, interests: %s\n",
			t.u, t.n, recs[t.u-1].Fields[0])
	}
	if len(pairs) > 0 {
		p := pairs[0]
		fmt.Printf("\nexample recommendation source: user%d ↔ user%d (sim %.2f)\n",
			p.Left.RID, p.Right.RID, p.Sim)
	}
}

func randomProfile(rng *rand.Rand, n int) []int {
	seen := map[int]bool{}
	var out []int
	for len(out) < n {
		d := rng.Intn(domains)
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

// domainTokens renders the 1-bits as word tokens ("d07 d12 ...") the word
// tokenizer keeps intact.
func domainTokens(bits map[int]bool) string {
	var ds []int
	for d := range bits {
		ds = append(ds, d)
	}
	sort.Ints(ds)
	var sb strings.Builder
	for i, d := range ds {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "d%02d", d)
	}
	return sb.String()
}
