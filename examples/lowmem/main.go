// Lowmem: the §5 insufficient-memory strategies in action. A workload
// with one enormous Stage 2 reduce group fails under a per-task memory
// budget with the plain BK kernel, and succeeds — with identical results
// — under map-based and reduce-based block processing.
//
//	go run ./examples/lowmem
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"fuzzyjoin"
	"fuzzyjoin/internal/mapreduce"
)

func main() {
	// Every record shares four title tokens, so one shared-token group
	// receives all 3000 projections; the unique author token keeps the
	// pairs below τ so the join result itself is tiny.
	recs := make([]fuzzyjoin.Record, 3000)
	for i := range recs {
		recs[i] = fuzzyjoin.Record{
			RID:    uint64(i + 1),
			Fields: []string{"shared quad token set", fmt.Sprintf("author%d", i), ""},
		}
	}
	const budget = 64 << 10 // 64 KiB per task

	run := func(label string, mode fuzzyjoin.Config) {
		fs := fuzzyjoin.NewFS(2)
		if err := fuzzyjoin.WriteRecords(fs, "in", recs); err != nil {
			log.Fatal(err)
		}
		mode.FS, mode.Work = fs, "job"
		mode.Kernel = fuzzyjoin.BK
		mode.MemoryLimit = budget
		mode.NumReducers = 4
		mode.Parallelism = 4
		res, err := fuzzyjoin.Join(context.Background(),
			fuzzyjoin.JoinSpec{Config: mode, Input: "in"})
		switch {
		case errors.Is(err, mapreduce.ErrInsufficientMemory):
			fmt.Printf("%-22s → out of memory (as §5 predicts): %v\n", label, err)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("%-22s → ok, %d joined pairs\n", label, res.Pairs)
		}
	}

	fmt.Printf("%d records, one giant reduce group, %d KiB/task budget\n\n", len(recs), budget>>10)
	run("no block processing", fuzzyjoin.Config{})
	run("map-based blocks", fuzzyjoin.Config{BlockMode: fuzzyjoin.MapBlocks, NumBlocks: 16})
	run("reduce-based blocks", fuzzyjoin.Config{BlockMode: fuzzyjoin.ReduceBlocks, NumBlocks: 16})
}
