package fuzzyjoin_test

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"fuzzyjoin"
	"fuzzyjoin/internal/datagen"
)

// sortedRIDs canonicalizes joined pairs to a sorted RID-pair list —
// output order varies with partitioning, the pair set must not.
func sortedRIDs(pairs []fuzzyjoin.JoinedPair) [][2]uint64 {
	out := make([][2]uint64, len(pairs))
	for i, p := range pairs {
		out[i] = [2]uint64{p.Left.RID, p.Right.RID}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func planCorpus() []fuzzyjoin.Record {
	return datagen.Generate(datagen.Spec{Records: 120, Seed: 77, ZipfSkew: 2.0, VocabSize: 96})
}

// TestPlanInMemory pins the facade contract: Plan on an in-memory spec
// returns a ranked, deterministic plan whose Best applies cleanly and
// whose join output matches the default configuration's exactly.
func TestPlanInMemory(t *testing.T) {
	ctx := context.Background()
	spec := fuzzyjoin.JoinSpec{Records: planCorpus()}
	p, err := fuzzyjoin.Plan(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Candidates) == 0 || p.Best != p.Candidates[0].Choice {
		t.Fatalf("malformed plan: %+v", p.Best)
	}
	p2, err := fuzzyjoin.Plan(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, p2) {
		t.Fatal("Plan is not deterministic for the same spec")
	}

	def, err := fuzzyjoin.Join(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	planned := spec
	planned.Config = p.Best.Apply(planned.Config)
	got, err := fuzzyjoin.Join(ctx, planned)
	if err != nil {
		t.Fatalf("join with planned config %s: %v", p.Best, err)
	}
	want, have := sortedRIDs(def.Joined), sortedRIDs(got.Joined)
	if !reflect.DeepEqual(want, have) {
		t.Fatalf("planned config %s changed the result:\nwant %v\ngot  %v", p.Best, want, have)
	}
}

// TestPlanFileMode plans from DFS files and takes the cluster size from
// the FS.
func TestPlanFileMode(t *testing.T) {
	fs := fuzzyjoin.NewFS(6)
	if err := fuzzyjoin.WriteRecords(fs, "pubs", planCorpus()); err != nil {
		t.Fatal(err)
	}
	p, err := fuzzyjoin.Plan(context.Background(), fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{FS: fs, Work: "job1"},
		Input:  "pubs",
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Nodes != 6 {
		t.Fatalf("planned for %d nodes, want the FS's 6", p.Nodes)
	}
	if !strings.Contains(p.Render(), "planner: chose") {
		t.Fatalf("Render missing the decision:\n%s", p.Render())
	}
}

// TestPlanRSMode samples both relations and measures their dictionary
// overlap.
func TestPlanRSMode(t *testing.T) {
	r := planCorpus()
	s := datagen.GenerateOverlapping(r, datagen.Spec{
		Records: 150, Seed: 78, ZipfSkew: 2.0, VocabSize: 96, StartRID: 1 << 20,
	}, 0.5)
	p, err := fuzzyjoin.Plan(context.Background(),
		fuzzyjoin.JoinSpec{Records: r, RecordsS: s})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Sample.RS {
		t.Fatal("R-S spec not sampled as RS")
	}
	if p.Sample.DictOverlap <= 0 || p.Sample.DictOverlap > 1 {
		t.Fatalf("DictOverlap = %g, want (0, 1]", p.Sample.DictOverlap)
	}
}

func TestPlanValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		spec fuzzyjoin.JoinSpec
		want string
	}{
		{"empty", fuzzyjoin.JoinSpec{}, "empty JoinSpec"},
		{"mixed", fuzzyjoin.JoinSpec{Input: "f", Records: planCorpus()}, "mixes"},
		{"file without FS", fuzzyjoin.JoinSpec{Input: "f"}, "needs Config.FS"},
		{"S without R", fuzzyjoin.JoinSpec{RecordsS: planCorpus()}, "without Records"},
	}
	for _, tc := range cases {
		_, err := fuzzyjoin.Plan(ctx, tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := fuzzyjoin.Plan(canceled, fuzzyjoin.JoinSpec{Records: planCorpus()}); !errorsIsCanceled(err) {
		t.Fatalf("pre-canceled Plan: err = %v, want ErrCanceled", err)
	}
}
