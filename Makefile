# Developer entry points. `make tier1` is the gate every change must
# pass: build + full test suite, vet, staticcheck (when installed), and
# the race detector over the runtime packages (the engine and DFS run
# user code across goroutines).

GO ?= go

.PHONY: all build test vet staticcheck race tier1 smoke bench bench-engine

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it; local
# environments without it skip with a note rather than failing).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./internal/mapreduce/... ./internal/dfs/...

tier1: build test vet staticcheck race

# smoke runs the CLI end to end with tracing on the bundled example
# data, leaving trace.jsonl / timeline.svg / metrics.json in smoke-out/.
smoke:
	@mkdir -p smoke-out
	$(GO) run ./cmd/fuzzyjoin -in testdata/pubs.tsv -nodes 2 -replication 2 \
		-node-fail 0 -speculative -trace -trace-out smoke-out -out smoke-out/pairs.txt
	@test -s smoke-out/trace.jsonl && test -s smoke-out/timeline.svg && test -s smoke-out/metrics.json
	@echo "smoke artifacts in smoke-out/"

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-engine runs the shuffle-datapath micro-benchmarks (sort, merge,
# round-trip) and records the parsed results to BENCH_engine.json; the
# raw benchmark lines still print to the terminal via stderr.
bench-engine:
	$(GO) test -run='^$$' -bench='BenchmarkSortPairs|BenchmarkMergeStream|BenchmarkShuffleRoundTrip' \
		-benchmem -count=3 ./internal/mapreduce | $(GO) run ./cmd/bench2json > BENCH_engine.json
	@echo "results recorded to BENCH_engine.json"
