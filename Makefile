# Developer entry points. `make tier1` is the gate every change must
# pass: build + full test suite, vet, and the race detector over the
# runtime packages (the engine and DFS run user code across goroutines).

GO ?= go

.PHONY: all build test vet race tier1 bench

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./internal/mapreduce/... ./internal/dfs/...

tier1: build test vet race

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
