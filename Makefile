# Developer entry points. `make tier1` is the gate every change must
# pass: build + full test suite, vet, staticcheck (when installed), and
# the race detector over the runtime packages (the engine and DFS run
# user code across goroutines).

GO ?= go

.PHONY: all build test vet staticcheck race tier1 smoke serve-smoke bench bench-engine bench-distrib bench-serve bench-planner conformance conformance-dist cover fuzz-smoke experiments

all: tier1

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH (CI installs it; local
# environments without it skip with a note rather than failing).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./internal/mapreduce/... ./internal/dfs/... \
		./internal/distrib/... ./internal/backoff/... ./internal/ssjserve/... \
		./internal/fvt/... ./internal/plan/...

tier1: build test vet staticcheck race

# smoke runs the CLI end to end with tracing on the bundled example
# data, leaving trace.jsonl / timeline.svg / metrics.json in smoke-out/.
smoke:
	@mkdir -p smoke-out
	$(GO) run ./cmd/fuzzyjoin -in testdata/pubs.tsv -nodes 2 -replication 2 \
		-node-fail 0 -speculative -trace -trace-out smoke-out -out smoke-out/pairs.txt
	@test -s smoke-out/trace.jsonl && test -s smoke-out/timeline.svg && test -s smoke-out/metrics.json
	@echo "smoke artifacts in smoke-out/"

# conformance sweeps the full pipeline-variant matrix (1792 cells: stage
# combos × self/R-S × routing × block processing × hot-token skew split
# off/k=2/k=4 × FVT build path × bitmap filter off/on ×
# plain/faulty/parallel/dist execution) against the exact oracle, then
# runs the metamorphic invariant suite, on a handful of seeded
# workloads. Any divergence prints a minimized `ssjcheck` reproducer and
# fails. The bare target covers the in-process modes; dist cells (forked
# worker processes over RPC) run in conformance-dist.
conformance:
	$(GO) run ./cmd/ssjcheck -seed 1 -records 40 -serve
	$(GO) run ./cmd/ssjcheck -seed 2 -records 50 -tau 0.7 -serve
	$(GO) run ./cmd/ssjcheck -seed 3 -records 60 -vocab 64 -skew 2.0 -tau 0.6 -serve

# serve-smoke is the online-service CI gate: the server comes up on an
# ephemeral port, 100 queries run through real HTTP — interleaved with
# incremental /add ingestion that crosses a drift re-order — every
# answer is diffed against the brute-force oracle, the metrics document
# lands in serve-out/metrics.json, and the server shuts down cleanly.
serve-smoke:
	@mkdir -p serve-out
	$(GO) run ./cmd/ssjserve -selfcheck 100 -records 150 -seed 5 \
		-metrics-out serve-out/metrics.json
	@test -s serve-out/metrics.json
	@echo "serve metrics in serve-out/metrics.json"

# conformance-dist exercises the distributed backend: a dist-only sweep
# on two forked worker processes, a chaos sweep that SIGKILLs workers
# mid-task on a seeded schedule (output must still match the oracle
# exactly), and an end-to-end traced CLI run whose per-attempt worker
# ids land in dist-out/trace.jsonl.
conformance-dist:
	$(GO) run ./cmd/ssjcheck -seed 1 -records 40 -exec dist -workers 2 -invariants=false
	$(GO) run ./cmd/ssjcheck -seed 2 -records 40 -exec dist -workers 3 \
		-chaos 0.4 -chaos-seed 7 -combo BTO-PK-BRJ,OPTO-BK-OPRJ,BTO-FVT-BRJ -invariants=false
	@mkdir -p dist-out
	$(GO) run ./cmd/fuzzyjoin -in testdata/pubs.tsv -workers 2 \
		-trace -trace-out dist-out -out dist-out/pairs.txt
	@test -s dist-out/trace.jsonl && test -s dist-out/pairs.txt
	@echo "distributed run artifacts in dist-out/"

# cover runs the full test suite with a cross-package coverage profile,
# renders cover.html, and enforces the ratchet: total statement coverage
# must not drop below COVERAGE_BASELINE (raise the baseline when
# coverage durably improves; never lower it to make a change pass).
cover:
	$(GO) test -count=1 -coverprofile=cover.out -coverpkg=./internal/...,./cmd/... ./...
	$(GO) tool cover -html=cover.out -o cover.html
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {gsub(/%/,"",$$NF); print $$NF}'); \
	base=$$(cat COVERAGE_BASELINE); \
	echo "total statement coverage: $$total% (baseline $$base%)"; \
	if [ "$$(awk -v t=$$total -v b=$$base 'BEGIN{print (t+0 >= b+0) ? "ok" : "low"}')" != ok ]; then \
		echo "FAIL: coverage $$total% fell below the $$base% baseline"; exit 1; \
	fi

# fuzz-smoke runs each fuzz target briefly with the committed seed
# corpora plus a short randomized exploration — a regression net, not a
# bug hunt (leave -fuzztime high and unattended for that).
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzTokenize -fuzztime=$(FUZZTIME) ./internal/tokenize
	$(GO) test -run='^$$' -fuzz=FuzzRecordCodec -fuzztime=$(FUZZTIME) ./internal/records
	$(GO) test -run='^$$' -fuzz=FuzzDecodeRun -fuzztime=$(FUZZTIME) ./internal/mapreduce
	$(GO) test -run='^$$' -fuzz=FuzzVerifyExact -fuzztime=$(FUZZTIME) ./internal/simfn
	$(GO) test -run='^$$' -fuzz=FuzzBitsigAdmissible -fuzztime=$(FUZZTIME) ./internal/bitsig
	$(GO) test -run='^$$' -fuzz=FuzzFVTTraversal -fuzztime=$(FUZZTIME) ./internal/fvt
	$(GO) test -run='^$$' -fuzz=FuzzPlannerDeterministic -fuzztime=$(FUZZTIME) \
		-fuzzminimizetime=5s ./internal/plan

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# bench-engine runs the shuffle-datapath micro-benchmarks (sort, merge,
# round-trip) plus the verification-kernel benchmarks (candidate-heavy
# workload, bitmap filter off and on) and records the parsed results to
# BENCH_engine.json; the raw benchmark lines still print to the terminal
# via stderr.
bench-engine:
	{ $(GO) test -run='^$$' -bench='BenchmarkSortPairs|BenchmarkMergeStream|BenchmarkShuffleRoundTrip' \
		-benchmem -count=3 ./internal/mapreduce && \
	  $(GO) test -run='^$$' -bench='BenchmarkVerify' \
		-benchmem -count=3 ./internal/ppjoin ; } | $(GO) run ./cmd/bench2json > BENCH_engine.json
	@echo "results recorded to BENCH_engine.json"

# bench-distrib measures the distributed backend for real: wall-clock
# for the standard self-join corpus in-process and on 1/2/4 forked
# worker processes, recorded to BENCH_distrib.json (the one non-simulated
# timing in the suite; absolute numbers depend on the host and CPU
# count, both recorded in the document).
bench-distrib:
	$(GO) run ./cmd/ssjexp -only distrib -distrib-out BENCH_distrib.json

# bench-planner runs the cost-planner ablation: three Zipf-skewed
# workloads, each joined for real under every hand-grid cell (stage
# combos × reducer counts) and under the planner's sampled choice;
# simulated makespans, the planner-vs-best ratio, and the worst-cell
# margin are recorded to BENCH_planner.json.
bench-planner:
	$(GO) run ./cmd/ssjexp -only planner -planner-out BENCH_planner.json

# bench-serve measures the online service under a Zipf-skewed query
# stream: QPS and p50/p99 latency per index shard count, recorded to
# BENCH_serve.json (real wall-clock; host and CPU count are recorded in
# the document, and every shard count must serve the identical pairs).
bench-serve:
	$(GO) run ./cmd/ssjexp -only serve -serve-out BENCH_serve.json

# experiments regenerates experiments_output.txt, the full suite's text
# output (untracked: it is a build artifact; regenerate it locally when
# you want the complete table set in one file).
experiments:
	$(GO) run ./cmd/ssjexp | tee experiments_output.txt
