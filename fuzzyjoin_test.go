package fuzzyjoin_test

import (
	"strings"
	"testing"

	"fuzzyjoin"
)

func pubs() []fuzzyjoin.Record {
	mk := func(rid uint64, title, authors string) fuzzyjoin.Record {
		return fuzzyjoin.Record{RID: rid, Fields: []string{title, authors, "rest"}}
	}
	return []fuzzyjoin.Record{
		mk(1, "Efficient Parallel Set-Similarity Joins Using MapReduce", "Vernica Carey Li"),
		mk(2, "Efficient Parallel Set Similarity Joins Using MapReduce", "Vernica Carey Li"),
		mk(3, "A Comparison of Approaches to Large-Scale Data Analysis", "Pavlo Paulson Rasin"),
		mk(4, "Comparison of Approaches to Large-Scale Data Analysis", "Pavlo Paulson Rasin"),
		mk(5, "Completely Unrelated Quantum Chromodynamics Lattice Study", "Nobody Here"),
	}
}

func TestSelfJoinRecords(t *testing.T) {
	pairs, err := fuzzyjoin.SelfJoinRecords(pubs(), fuzzyjoin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2 (the two near-duplicate clusters): %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.Sim < 0.8 {
			t.Fatalf("pair below threshold: %+v", p)
		}
		if p.Left.RID >= p.Right.RID {
			t.Fatalf("self-join pair not ordered: %+v", p)
		}
	}
}

func TestSelfJoinRecordsFastCombo(t *testing.T) {
	cfg := fuzzyjoin.Config{Kernel: fuzzyjoin.PK, RecordJoin: fuzzyjoin.OPRJ, TokenOrder: fuzzyjoin.OPTO}
	pairs, err := fuzzyjoin.SelfJoinRecords(pubs(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
}

func TestRSJoinRecords(t *testing.T) {
	r := pubs()[:3]
	s := pubs()[2:]
	for i := range s {
		s[i].RID += 100
	}
	pairs, err := fuzzyjoin.RSJoinRecords(r, s, fuzzyjoin.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// R record 3 ("A Comparison of...") matches S records 103 and 104.
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2: %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.Left.RID != 3 {
			t.Fatalf("left side is not the R record: %+v", p)
		}
	}
}

func TestFileBasedAPI(t *testing.T) {
	fs := fuzzyjoin.NewFS(4)
	if err := fuzzyjoin.WriteRecords(fs, "pubs", pubs()); err != nil {
		t.Fatal(err)
	}
	res, err := fuzzyjoin.SelfJoin(fuzzyjoin.Config{FS: fs, Work: "job1"}, "pubs")
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || res.Pairs != 2 {
		t.Fatalf("pairs = %d (result says %d), want 2", len(pairs), res.Pairs)
	}
	if res.TokenOrderFile == "" || res.RIDPairs == "" {
		t.Fatalf("result metadata incomplete: %+v", res)
	}
}

func TestRecordsWrappersRejectManagedFields(t *testing.T) {
	if _, err := fuzzyjoin.SelfJoinRecords(pubs(), fuzzyjoin.Config{Work: "x"}); err == nil ||
		!strings.Contains(err.Error(), "leave them unset") {
		t.Fatalf("err = %v", err)
	}
}

func TestEditDistanceFacade(t *testing.T) {
	if d := fuzzyjoin.EditDistance("kitten", "sitting"); d != 3 {
		t.Fatalf("EditDistance = %d", d)
	}
	pairs := fuzzyjoin.EditDistanceSelfJoin(
		[]string{"similarity", "similarly", "different"},
		fuzzyjoin.EditDistanceOptions{K: 2},
	)
	if len(pairs) != 1 || pairs[0].I != 0 || pairs[0].J != 1 || pairs[0].Dist != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
}
