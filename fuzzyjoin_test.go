package fuzzyjoin_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"fuzzyjoin"
)

// cancelInjector cancels the join's context from inside a task attempt,
// simulating an operator killing a long join mid-flight.
type cancelInjector struct{ cancel context.CancelFunc }

func (c cancelInjector) AttemptFault(fuzzyjoin.TaskRef) error {
	c.cancel()
	return nil
}

func errorsIsCanceled(err error) bool {
	return errors.Is(err, fuzzyjoin.ErrCanceled)
}

func pubs() []fuzzyjoin.Record {
	mk := func(rid uint64, title, authors string) fuzzyjoin.Record {
		return fuzzyjoin.Record{RID: rid, Fields: []string{title, authors, "rest"}}
	}
	return []fuzzyjoin.Record{
		mk(1, "Efficient Parallel Set-Similarity Joins Using MapReduce", "Vernica Carey Li"),
		mk(2, "Efficient Parallel Set Similarity Joins Using MapReduce", "Vernica Carey Li"),
		mk(3, "A Comparison of Approaches to Large-Scale Data Analysis", "Pavlo Paulson Rasin"),
		mk(4, "Comparison of Approaches to Large-Scale Data Analysis", "Pavlo Paulson Rasin"),
		mk(5, "Completely Unrelated Quantum Chromodynamics Lattice Study", "Nobody Here"),
	}
}

func TestJoinRecords(t *testing.T) {
	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{Records: pubs()})
	if err != nil {
		t.Fatal(err)
	}
	pairs := res.Joined
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2 (the two near-duplicate clusters): %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.Sim < 0.8 {
			t.Fatalf("pair below threshold: %+v", p)
		}
		if p.Left.RID >= p.Right.RID {
			t.Fatalf("self-join pair not ordered: %+v", p)
		}
	}
}

func TestJoinRecordsFastCombo(t *testing.T) {
	cfg := fuzzyjoin.Config{Kernel: fuzzyjoin.PK, RecordJoin: fuzzyjoin.OPRJ, TokenOrder: fuzzyjoin.OPTO}
	res, err := fuzzyjoin.Join(context.Background(),
		fuzzyjoin.JoinSpec{Config: cfg, Records: pubs()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Joined) != 2 {
		t.Fatalf("pairs = %d, want 2", len(res.Joined))
	}
}

func TestJoinRecordsRS(t *testing.T) {
	r := pubs()[:3]
	s := pubs()[2:]
	for i := range s {
		s[i].RID += 100
	}
	res, err := fuzzyjoin.Join(context.Background(),
		fuzzyjoin.JoinSpec{Records: r, RecordsS: s})
	if err != nil {
		t.Fatal(err)
	}
	pairs := res.Joined
	// R record 3 ("A Comparison of...") matches S records 103 and 104.
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2: %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p.Left.RID != 3 {
			t.Fatalf("left side is not the R record: %+v", p)
		}
	}
}

func TestJoinFileMode(t *testing.T) {
	fs := fuzzyjoin.NewFS(4)
	if err := fuzzyjoin.WriteRecords(fs, "pubs", pubs()); err != nil {
		t.Fatal(err)
	}
	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{FS: fs, Work: "job1"},
		Input:  "pubs",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Joined != nil {
		t.Fatal("file-mode join filled Result.Joined; output belongs in the DFS part files")
	}
	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 || res.Pairs != 2 {
		t.Fatalf("pairs = %d (result says %d), want 2", len(pairs), res.Pairs)
	}
	if res.TokenOrderFile == "" || res.RIDPairs == "" {
		t.Fatalf("result metadata incomplete: %+v", res)
	}
}

func TestJoinSpecValidation(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		spec fuzzyjoin.JoinSpec
		want string
	}{
		{"empty", fuzzyjoin.JoinSpec{}, "set Input or Records"},
		{"mixed modes", fuzzyjoin.JoinSpec{Input: "r", Records: pubs()}, "use one mode"},
		{"S without R file", fuzzyjoin.JoinSpec{InputS: "s"}, "without Input"},
		{"S without R records", fuzzyjoin.JoinSpec{RecordsS: pubs()}, "without Records"},
		{"managed FS", fuzzyjoin.JoinSpec{
			Config:  fuzzyjoin.Config{Work: "x"},
			Records: pubs(),
		}, "leave them unset"},
	}
	for _, tc := range cases {
		if _, err := fuzzyjoin.Join(ctx, tc.spec); err == nil ||
			!strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
}

// TestJoinCancel kills an in-memory join mid-flight: the injected fault
// cancels the context from inside a map task, and the pipeline must
// surface ErrCanceled instead of burning its retry budget.
func TestJoinCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := fuzzyjoin.Join(ctx, fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{
			Retry:         fuzzyjoin.RetryPolicy{MaxAttempts: 5},
			FaultInjector: cancelInjector{cancel: cancel},
		},
		Records: pubs(),
	})
	if !errorsIsCanceled(err) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestJoinPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := fuzzyjoin.Join(ctx, fuzzyjoin.JoinSpec{Records: pubs()}); !errorsIsCanceled(err) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestEditDistanceFacade(t *testing.T) {
	if d := fuzzyjoin.EditDistance("kitten", "sitting"); d != 3 {
		t.Fatalf("EditDistance = %d", d)
	}
	pairs := fuzzyjoin.EditDistanceSelfJoin(
		[]string{"similarity", "similarly", "different"},
		fuzzyjoin.EditDistanceOptions{K: 2},
	)
	if len(pairs) != 1 || pairs[0].I != 0 || pairs[0].J != 1 || pairs[0].Dist != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
}
