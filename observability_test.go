package fuzzyjoin_test

import (
	"bytes"
	"context"
	"sort"
	"strings"
	"testing"

	"fuzzyjoin"
)

func traceTestRecords() []fuzzyjoin.Record {
	// Clusters of near-duplicates so the join result is non-empty.
	base := []string{
		"parallel set similarity joins using mapreduce",
		"efficient record linkage in large data clusters",
		"prefix filtering for scalable similarity search",
		"token ordering strategies for distributed joins",
	}
	var recs []fuzzyjoin.Record
	rid := uint64(1)
	for _, title := range base {
		for _, suffix := range []string{"", "", " extended", " revisited edition"} {
			recs = append(recs, fuzzyjoin.Record{
				RID:    rid,
				Fields: []string{title + suffix, "smith jones", "conf"},
			})
			rid++
		}
	}
	return recs
}

func runTraced(t *testing.T, trace bool) (string, *fuzzyjoin.Result) {
	t.Helper()
	fs := fuzzyjoin.NewFS(2, fuzzyjoin.Replication(2), fuzzyjoin.AutoReReplicate(true))
	if err := fuzzyjoin.WriteRecords(fs, "pubs", traceTestRecords()); err != nil {
		t.Fatal(err)
	}
	cfg := fuzzyjoin.Config{
		FS: fs, Work: "w", NumReducers: 4,
		Speculative:  true,
		NodeFailures: []fuzzyjoin.NodeFailure{{Barrier: fuzzyjoin.AfterMap, Node: 0}},
	}
	if trace {
		cfg.Trace = fuzzyjoin.NewTracer()
	}
	res, err := fuzzyjoin.Join(context.Background(),
		fuzzyjoin.JoinSpec{Config: cfg, Input: "pubs"})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]string, len(pairs))
	for i, p := range pairs {
		lines[i] = p.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), res
}

// TestTracedNodeFailureAcceptance is the end-to-end observability
// check: a replication-2 self-join that kills node 0 after the first
// map wave with speculation on must (a) produce byte-identical output
// with tracing on or off, (b) record node-failure, recomputation, and
// speculation events, (c) export JSONL that parses back, and (d) render
// a per-node timeline with bars on every node.
func TestTracedNodeFailureAcceptance(t *testing.T) {
	plain, _ := runTraced(t, false)
	traced, res := runTraced(t, true)
	if plain != traced {
		t.Fatal("join output differs with tracing enabled")
	}
	if plain == "" {
		t.Fatal("join produced no pairs; test is vacuous")
	}

	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace collected")
	}
	if tr.Count("node-down") == 0 {
		t.Error("no node-down event")
	}
	if tr.Count("recompute-start") == 0 || tr.Count("recompute-end") == 0 {
		t.Error("no lost-map-output recompute events")
	}
	if tr.Count("speculative-win") == 0 || tr.Count("speculative-loss") == 0 {
		t.Error("no speculation events")
	}
	if tr.Count("attempt-end") == 0 {
		t.Error("no attempt-end events")
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"schema":1}`) {
		t.Fatalf("JSONL header missing: %q", buf.String()[:40])
	}

	events := fuzzyjoin.TimelineEvents(res, 2)
	svg := fuzzyjoin.TimelineSVG("acceptance", events)
	nodesWithBars := map[int]bool{}
	for _, e := range events {
		if e.Type == "task-span" {
			nodesWithBars[e.Node] = true
			if e.End <= e.Start {
				t.Errorf("span %+v: empty simulated interval", e)
			}
		}
	}
	if len(nodesWithBars) != 2 {
		t.Errorf("timeline bars on %d nodes, want 2", len(nodesWithBars))
	}
	for _, want := range []string{"<svg", "node 0", "node 1", "✝"} {
		if !strings.Contains(svg, want) {
			t.Errorf("timeline SVG missing %q", want)
		}
	}
}

// TestNewFSOptions: the options constructor defaults to single
// replication and honors the Replication option.
func TestNewFSOptions(t *testing.T) {
	if got := fuzzyjoin.NewFS(4).Replication(); got != 1 {
		t.Fatalf("default replication = %d, want 1", got)
	}
	opt := fuzzyjoin.NewFS(4, fuzzyjoin.Replication(3), fuzzyjoin.AutoReReplicate(true))
	if opt.Replication() != 3 {
		t.Fatalf("replication = %d, want 3", opt.Replication())
	}
}
