module fuzzyjoin

go 1.22
