package fuzzyjoin_test

import (
	"context"
	"fmt"

	"fuzzyjoin"
)

// The zero JoinSpec Config runs the paper's recommended configuration:
// word tokens over title+authors, Jaccard at τ = 0.80, BTO-BK-BRJ.
// In-memory joins return their pairs on Result.Joined.
func ExampleJoin() {
	pubs := []fuzzyjoin.Record{
		{RID: 1, Fields: []string{"Efficient Parallel Set-Similarity Joins Using MapReduce", "Vernica Carey Li", ""}},
		{RID: 2, Fields: []string{"Efficient Parallel Set Similarity Joins using MapReduce", "Vernica Carey Li", ""}},
		{RID: 3, Fields: []string{"An Entirely Different Publication About Compilers", "Someone Else", ""}},
	}
	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{Records: pubs})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Joined {
		fmt.Printf("%d ~ %d (sim %.2f)\n", p.Left.RID, p.Right.RID, p.Sim)
	}
	// Output:
	// 1 ~ 2 (sim 1.00)
}

// Setting RecordsS makes the join R-S; the left record of every output
// pair is from R (pass the smaller relation as R — it builds the token
// dictionary).
func ExampleJoin_rs() {
	r := []fuzzyjoin.Record{
		{RID: 1, Fields: []string{"A Comparison of Approaches to Large-Scale Data Analysis", "Pavlo et al", ""}},
	}
	s := []fuzzyjoin.Record{
		{RID: 7, Fields: []string{"Comparison of Approaches to Large Scale Data Analysis", "Pavlo et al", ""}},
		{RID: 8, Fields: []string{"Unrelated", "Nobody", ""}},
	}
	res, err := fuzzyjoin.Join(context.Background(),
		fuzzyjoin.JoinSpec{Records: r, RecordsS: s})
	if err != nil {
		panic(err)
	}
	for _, p := range res.Joined {
		fmt.Printf("R[%d] ~ S[%d]\n", p.Left.RID, p.Right.RID)
	}
	// Output:
	// R[1] ~ S[7]
}

// File-mode joins run over DFS files and select per-stage algorithms;
// BTO-PK-OPRJ is the fastest combination the paper measured.
func ExampleJoin_fileMode() {
	fs := fuzzyjoin.NewFS(4)
	recs := []fuzzyjoin.Record{
		{RID: 1, Fields: []string{"parallel set similarity joins", "a b", ""}},
		{RID: 2, Fields: []string{"parallel set similarity joins", "a b", ""}},
	}
	if err := fuzzyjoin.WriteRecords(fs, "in", recs); err != nil {
		panic(err)
	}
	res, err := fuzzyjoin.Join(context.Background(), fuzzyjoin.JoinSpec{
		Config: fuzzyjoin.Config{
			FS:         fs,
			Work:       "job",
			TokenOrder: fuzzyjoin.BTO,
			Kernel:     fuzzyjoin.PK,
			RecordJoin: fuzzyjoin.OPRJ,
		},
		Input: "in",
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("pairs:", res.Pairs)
	// Output:
	// pairs: 1
}

// NewIndex answers the same question online: Match returns every
// indexed record similar to the probe, and Add ingests new records
// incrementally without rebuilding the index.
func ExampleNewIndex() {
	ctx := context.Background()
	ix, err := fuzzyjoin.NewIndex(ctx, fuzzyjoin.WithCorpus([]fuzzyjoin.Record{
		{RID: 1, Fields: []string{"Efficient Parallel Set-Similarity Joins Using MapReduce", "Vernica Carey Li", ""}},
		{RID: 2, Fields: []string{"An Entirely Different Publication About Compilers", "Someone Else", ""}},
	}))
	if err != nil {
		panic(err)
	}
	defer ix.Close()

	probe := fuzzyjoin.Record{RID: 99, Fields: []string{"Efficient Parallel Set Similarity Joins using MapReduce", "Vernica Carey Li", ""}}
	pairs, err := ix.Match(ctx, probe)
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("indexed %d matches probe (sim %.2f)\n", p.Left.RID, p.Sim)
	}
	// Output:
	// indexed 1 matches probe (sim 1.00)
}
