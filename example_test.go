package fuzzyjoin_test

import (
	"fmt"

	"fuzzyjoin"
)

// The zero Config runs the paper's recommended configuration: word
// tokens over title+authors, Jaccard at τ = 0.80, BTO-BK-BRJ.
func ExampleSelfJoinRecords() {
	pubs := []fuzzyjoin.Record{
		{RID: 1, Fields: []string{"Efficient Parallel Set-Similarity Joins Using MapReduce", "Vernica Carey Li", ""}},
		{RID: 2, Fields: []string{"Efficient Parallel Set Similarity Joins using MapReduce", "Vernica Carey Li", ""}},
		{RID: 3, Fields: []string{"An Entirely Different Publication About Compilers", "Someone Else", ""}},
	}
	pairs, err := fuzzyjoin.SelfJoinRecords(pubs, fuzzyjoin.Config{})
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("%d ~ %d (sim %.2f)\n", p.Left.RID, p.Right.RID, p.Sim)
	}
	// Output:
	// 1 ~ 2 (sim 1.00)
}

// R-S joins tag each record with its relation; the left record of every
// output pair is from R (pass the smaller relation as R — it builds the
// token dictionary).
func ExampleRSJoinRecords() {
	r := []fuzzyjoin.Record{
		{RID: 1, Fields: []string{"A Comparison of Approaches to Large-Scale Data Analysis", "Pavlo et al", ""}},
	}
	s := []fuzzyjoin.Record{
		{RID: 7, Fields: []string{"Comparison of Approaches to Large Scale Data Analysis", "Pavlo et al", ""}},
		{RID: 8, Fields: []string{"Unrelated", "Nobody", ""}},
	}
	pairs, err := fuzzyjoin.RSJoinRecords(r, s, fuzzyjoin.Config{})
	if err != nil {
		panic(err)
	}
	for _, p := range pairs {
		fmt.Printf("R[%d] ~ S[%d]\n", p.Left.RID, p.Right.RID)
	}
	// Output:
	// R[1] ~ S[7]
}

// Stage algorithms are selected per stage; BTO-PK-OPRJ is the fastest
// combination the paper measured.
func ExampleSelfJoin() {
	fs := fuzzyjoin.NewFS(4)
	recs := []fuzzyjoin.Record{
		{RID: 1, Fields: []string{"parallel set similarity joins", "a b", ""}},
		{RID: 2, Fields: []string{"parallel set similarity joins", "a b", ""}},
	}
	if err := fuzzyjoin.WriteRecords(fs, "in", recs); err != nil {
		panic(err)
	}
	res, err := fuzzyjoin.SelfJoin(fuzzyjoin.Config{
		FS:         fs,
		Work:       "job",
		TokenOrder: fuzzyjoin.BTO,
		Kernel:     fuzzyjoin.PK,
		RecordJoin: fuzzyjoin.OPRJ,
	}, "in")
	if err != nil {
		panic(err)
	}
	fmt.Println("pairs:", res.Pairs)
	// Output:
	// pairs: 1
}
