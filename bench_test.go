// One benchmark per table and figure of the paper's evaluation (§6), plus
// the ablations DESIGN.md calls out. Each benchmark drives the same
// harness as cmd/ssjexp on a reduced corpus (so `go test -bench=.`
// finishes in minutes) and reports the experiment's headline quantity as
// a custom metric; run cmd/ssjexp for the full-scale tables recorded in
// EXPERIMENTS.md.
package fuzzyjoin_test

import (
	"testing"

	"fuzzyjoin/internal/experiments"
)

// benchParams shrinks the corpora ~8× from the ssjexp defaults.
func benchParams() experiments.Params {
	return experiments.Params{
		BaseRecords:   600,
		BaseRecordsS:  650,
		Seed:          42,
		Threshold:     0.8,
		Parallelism:   4,
		MemoryPerTask: 640 << 10, // scaled with the corpus (5 MiB × 600/4800)
	}
}

// BenchmarkFig8SelfJoinTotal regenerates Figure 8: self-join total time,
// DBLP×{5,10,25}, 10 nodes, three combos.
func BenchmarkFig8SelfJoinTotal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: BTO-PK-OPRJ total on ×25 (the paper's ~650 s result).
		b.ReportMetric(r.Times[2][2].Total.Seconds(), "simsec/x25-BTO-PK-OPRJ")
	}
}

// BenchmarkFig9SelfJoinSpeedup regenerates Figures 9 and 10: self-join
// speedup, DBLP×10 on 2–10 nodes.
func BenchmarkFig9SelfJoinSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup(1)[len(r.Nodes)-1], "speedup10/BTO-PK-BRJ")
	}
}

// BenchmarkTable1StageSpeedup regenerates Table 1: per-stage times on
// 2/4/8/10 nodes.
func BenchmarkTable1StageSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Table1()
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Cols) - 1
		b.ReportMetric(r.Times["PK"][last].Seconds(), "simsec/PK-10nodes")
	}
}

// BenchmarkFig11SelfJoinScaleup regenerates Figure 11: self-join scaleup
// along the 2.5×-per-node diagonal.
func BenchmarkFig11SelfJoinScaleup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		// Headline: scaleup flatness of BTO-PK-BRJ (1.0 = perfect).
		flat := float64(r.Times[len(r.Times)-1][1].Total) / float64(r.Times[0][1].Total)
		b.ReportMetric(flat, "scaleup-ratio/BTO-PK-BRJ")
	}
}

// BenchmarkTable2StageScaleup regenerates Table 2: per-stage scaleup
// times.
func BenchmarkTable2StageScaleup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		last := len(r.Cols) - 1
		b.ReportMetric(r.Times["BK"][last].Seconds()/r.Times["PK"][last].Seconds(), "BKoverPK/x25")
	}
}

// BenchmarkFig12RSJoinTotal regenerates Figure 12: R-S join total time on
// 10 nodes (BTO-PK-OPRJ reports OOM at ×25, as in the paper).
func BenchmarkFig12RSJoinTotal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		oom := 0.0
		if r.Times[2][2].OOM {
			oom = 1
		}
		b.ReportMetric(oom, "OPRJ-OOM-at-x25")
	}
}

// BenchmarkFig13RSJoinSpeedup regenerates Figure 13: R-S speedup on 2–10
// nodes.
func BenchmarkFig13RSJoinSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Speedup(0)[len(r.Nodes)-1], "speedup10/BTO-BK-BRJ")
	}
}

// BenchmarkFig14RSJoinScaleup regenerates Figure 14: R-S scaleup
// (BTO-PK-OPRJ runs out of memory from ×20, as in the paper).
func BenchmarkFig14RSJoinScaleup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		oom := 0.0
		for _, row := range r.Times {
			if row[2].OOM {
				oom++
			}
		}
		b.ReportMetric(oom, "OPRJ-OOM-cells")
	}
}

// BenchmarkGroupCountAblation regenerates the §6.1.1 token-group study
// (best performance at one group per token).
func BenchmarkGroupCountAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.GroupAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Replicas[len(r.Replicas)-1]), "replicas/one-per-token")
	}
}

// BenchmarkStage3SkewStats regenerates the §6.1.1 skew statistics (RID
// frequency in join pairs; records per reduce instance).
func BenchmarkStage3SkewStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.SkewStats()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.RIDMean, "rid-freq-mean")
		b.ReportMetric(float64(r.RIDMax), "rid-freq-max")
	}
}

// BenchmarkBlockProcessing regenerates the §5 comparison: unblocked vs
// map-based vs reduce-based, identical results.
func BenchmarkBlockProcessing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.BlockProcessing()
		if err != nil {
			b.Fatal(err)
		}
		if r.Pairs[0] != r.Pairs[1] || r.Pairs[1] != r.Pairs[2] {
			b.Fatalf("block modes disagree: %v", r.Pairs)
		}
		b.ReportMetric(float64(r.Replicas[1])/float64(r.Replicas[0]), "map-based-replication")
	}
}

// BenchmarkFilterAblation measures each filter's contribution inside the
// kernel (design-choice ablation from DESIGN.md).
func BenchmarkFilterAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.FilterAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Verified[0])/float64(r.Verified[len(r.Verified)-1]), "verify-reduction")
	}
}

// BenchmarkKernelStats compares BK and PK candidate/verify work.
func BenchmarkKernelStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.KernelStats()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.Candidates[0])/float64(r.Candidates[1]), "BK-candidates-over-PK")
	}
}

// BenchmarkRoutingAblation compares individual vs grouped token routing.
func BenchmarkRoutingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		if _, err := s.RoutingAblation(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCombinerAblation measures the Stage 1 combiner's shuffle
// reduction.
func BenchmarkCombinerAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite(benchParams())
		r, err := s.CombinerAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(r.ShuffleBytes[1])/float64(r.ShuffleBytes[0]), "shuffle-inflation-no-combiner")
	}
}
