// Package fuzzyjoin is a parallel set-similarity join library — a Go
// reproduction of "Efficient Parallel Set-Similarity Joins Using
// MapReduce" (Vernica, Carey, Li — SIGMOD 2010), named after the authors'
// released system.
//
// The library answers self-join and R-S join queries end-to-end: given
// files of complete records it produces complete pairs of records whose
// join attributes are set-similar (Jaccard, cosine, or dice) at or above
// a threshold. Processing runs as three MapReduce stages on the bundled
// runtime (see internal/mapreduce): token ordering (BTO/OPTO), RID-pair
// generation with prefix filtering (BK/PK kernels), and record join
// (BRJ/OPRJ), with §5 block-processing strategies for reduce groups that
// exceed memory.
//
// # Quick start
//
//	fs := fuzzyjoin.NewFS(4)
//	fuzzyjoin.WriteRecords(fs, "pubs", recs)
//	res, err := fuzzyjoin.SelfJoin(fuzzyjoin.Config{FS: fs, Work: "job1"}, "pubs")
//	if err != nil { ... }
//	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
//
// Or, for small in-memory workloads, skip the file system entirely:
//
//	pairs, err := fuzzyjoin.SelfJoinRecords(recs, fuzzyjoin.Config{})
//
// The zero Config runs the paper's recommended configuration: word
// tokens over title+authors, Jaccard at τ = 0.80, BTO-BK-BRJ with the
// full PPJoin+ filter stack. Set Kernel: fuzzyjoin.PK and RecordJoin:
// fuzzyjoin.OPRJ for the fastest combination the paper measured
// (BTO-PK-OPRJ), or keep BRJ for the most scalable one (BTO-PK-BRJ).
package fuzzyjoin

import (
	"fmt"

	"fuzzyjoin/internal/core"
	"fuzzyjoin/internal/dfs"
	"fuzzyjoin/internal/editdist"
	"fuzzyjoin/internal/mapreduce"
	"fuzzyjoin/internal/records"
	"fuzzyjoin/internal/simfn"
)

// Core configuration and result types.
type (
	// Config configures an end-to-end join; see the field docs in
	// internal/core.
	Config = core.Config
	// Result describes a completed join: output location, per-stage
	// metrics, and the pair count.
	Result = core.Result
	// Record is one input record: a unique RID plus fields.
	Record = records.Record
	// JoinedPair is one output pair: two records and their similarity.
	JoinedPair = records.JoinedPair
	// RIDPair is a Stage 2 result (two RIDs and their similarity).
	RIDPair = records.RIDPair
	// FS is the simulated distributed file system joins run on.
	FS = dfs.FS
)

// Stage algorithm choices (see the paper's §3).
const (
	// BTO / OPTO select the Stage 1 token-ordering algorithm.
	BTO  = core.BTO
	OPTO = core.OPTO
	// BK / PK select the Stage 2 kernel.
	BK = core.BK
	PK = core.PK
	// BRJ / OPRJ select the Stage 3 record join.
	BRJ  = core.BRJ
	OPRJ = core.OPRJ
	// IndividualTokens / GroupedTokens select Stage 2 routing.
	IndividualTokens = core.IndividualTokens
	GroupedTokens    = core.GroupedTokens
	// NoBlocks / MapBlocks / ReduceBlocks select §5 block processing.
	NoBlocks     = core.NoBlocks
	MapBlocks    = core.MapBlocks
	ReduceBlocks = core.ReduceBlocks
)

// Similarity functions.
const (
	Jaccard = simfn.Jaccard
	Cosine  = simfn.Cosine
	Dice    = simfn.Dice
)

// Fault-tolerance configuration (see the field docs in
// internal/mapreduce): Config.Retry re-executes failed task attempts the
// way Hadoop does, and Config.FaultInjector deterministically fails
// chosen attempts for tests and failure experiments.
type (
	// RetryPolicy bounds attempts per task and shapes the backoff.
	RetryPolicy = mapreduce.RetryPolicy
	// FaultInjector decides which task attempts to fail.
	FaultInjector = mapreduce.FaultInjector
	// TaskRef identifies one task attempt (job, phase, task, attempt).
	TaskRef = mapreduce.TaskRef
	// RateInjector fails a deterministic pseudo-random fraction of tasks.
	RateInjector = mapreduce.RateInjector
	// NodeFailure schedules a DFS node death (or recovery) at a job
	// barrier; see Config.NodeFailures.
	NodeFailure = mapreduce.NodeFailure
	// Barrier is the point in a job a NodeFailure fires at.
	Barrier = mapreduce.Barrier
)

// FailAttempts returns an injector failing exactly the listed attempts.
func FailAttempts(refs ...TaskRef) FaultInjector { return mapreduce.FailAttempts(refs...) }

// Task phases for TaskRef.
const (
	MapPhase    = mapreduce.MapPhase
	ReducePhase = mapreduce.ReducePhase
)

// Node-failure barriers for NodeFailure.Barrier.
const (
	BeforeMap = mapreduce.BeforeMap
	AfterMap  = mapreduce.AfterMap
)

// ErrBlockUnavailable is the DFS error surfaced (wrapped) when every
// replica of a needed block is dead or corrupt — at replication 1 a
// single node death makes the affected job fail cleanly with this.
var ErrBlockUnavailable = dfs.ErrBlockUnavailable

// Record field indices for the bibliographic record layout.
const (
	FieldTitle   = records.FieldTitle
	FieldAuthors = records.FieldAuthors
	FieldRest    = records.FieldRest
)

// FSOption customizes a file system created by NewFS.
type FSOption func(*dfs.Options)

// Replication stores n copies of every block on distinct nodes
// (HDFS-style). n ≥ 2 lets joins survive a node death mid-pipeline; see
// Config.NodeFailures. The default is one replica per block.
func Replication(n int) FSOption {
	return func(o *dfs.Options) { o.Replication = n }
}

// AutoReReplicate re-replicates under-replicated blocks automatically
// after a node failure (the namenode's background repair). It is off by
// default; NewReplicatedFS enables it.
func AutoReReplicate(on bool) FSOption {
	return func(o *dfs.Options) { o.AutoReReplicate = on }
}

// NewFS creates a distributed file system spread over the given number of
// virtual nodes. With no options each block is stored once; pass
// Replication and AutoReReplicate for an HDFS-style fault-tolerant
// system:
//
//	fs := fuzzyjoin.NewFS(4, fuzzyjoin.Replication(2), fuzzyjoin.AutoReReplicate(true))
func NewFS(nodes int, opts ...FSOption) *FS {
	o := dfs.Options{Nodes: nodes}
	for _, opt := range opts {
		opt(&o)
	}
	return dfs.New(o)
}

// NewReplicatedFS creates a distributed file system storing `replication`
// copies of every block on distinct nodes, with automatic re-replication
// after a node failure.
//
// Deprecated: Use NewFS with the Replication and AutoReReplicate
// options instead.
func NewReplicatedFS(nodes, replication int) *FS {
	return NewFS(nodes, Replication(replication), AutoReReplicate(true))
}

// WriteRecords stores records as a Text-format DFS file joins can read.
func WriteRecords(fs *FS, name string, recs []Record) error {
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.Line()
	}
	return mapreduce.WriteTextFile(fs, name, lines)
}

// ReadJoinedPairs parses a join's final output (Result.Output).
func ReadJoinedPairs(fs *FS, outputPrefix string) ([]JoinedPair, error) {
	lines, err := mapreduce.ReadLines(fs, outputPrefix+"/")
	if err != nil {
		return nil, err
	}
	out := make([]JoinedPair, 0, len(lines))
	for _, l := range lines {
		if l == "" {
			continue
		}
		jp, err := records.ParseJoinedPair(l)
		if err != nil {
			return nil, err
		}
		out = append(out, jp)
	}
	return out, nil
}

// SelfJoin joins a record file with itself; see core.SelfJoin.
func SelfJoin(cfg Config, input string) (*Result, error) {
	return core.SelfJoin(cfg, input)
}

// RSJoin joins two record files; inputR should be the smaller relation
// (Stage 1 builds the token dictionary from it). See core.RSJoin.
func RSJoin(cfg Config, inputR, inputS string) (*Result, error) {
	return core.RSJoin(cfg, inputR, inputS)
}

// SelfJoinRecords is the in-memory convenience wrapper: it provisions a
// single-node FS, runs the full pipeline, and returns the joined pairs.
// cfg.FS and cfg.Work are managed by the wrapper and must be unset.
func SelfJoinRecords(recs []Record, cfg Config) ([]JoinedPair, error) {
	fs, err := stageRecords(cfg, "r", recs)
	if err != nil {
		return nil, err
	}
	cfg.FS, cfg.Work = fs, "work"
	res, err := core.SelfJoin(cfg, "r")
	if err != nil {
		return nil, err
	}
	return ReadJoinedPairs(fs, res.Output)
}

// RSJoinRecords is the in-memory convenience wrapper for R-S joins.
func RSJoinRecords(r, s []Record, cfg Config) ([]JoinedPair, error) {
	fs, err := stageRecords(cfg, "r", r)
	if err != nil {
		return nil, err
	}
	if err := WriteRecords(fs, "s", s); err != nil {
		return nil, err
	}
	cfg.FS, cfg.Work = fs, "work"
	res, err := core.RSJoin(cfg, "r", "s")
	if err != nil {
		return nil, err
	}
	return ReadJoinedPairs(fs, res.Output)
}

func stageRecords(cfg Config, name string, recs []Record) (*FS, error) {
	if cfg.FS != nil || cfg.Work != "" {
		return nil, fmt.Errorf("fuzzyjoin: the Records wrappers manage FS and Work; leave them unset")
	}
	fs := NewFS(1)
	if err := WriteRecords(fs, name, recs); err != nil {
		return nil, err
	}
	return fs, nil
}

// Edit-distance joins (the application the paper's footnote 1 points at).
type (
	// EditDistanceOptions configures an edit-distance join (threshold K,
	// q-gram length Q).
	EditDistanceOptions = editdist.Options
	// EditDistancePair is one edit-distance join result: indices into
	// the input slice and the exact distance.
	EditDistancePair = editdist.Pair
)

// EditDistance returns the exact Levenshtein distance between two
// strings.
func EditDistance(a, b string) int { return editdist.Distance(a, b) }

// EditDistanceSelfJoin finds all string pairs within edit distance
// opts.K, using q-gram count filtering, prefix filtering, and banded
// verification.
func EditDistanceSelfJoin(strs []string, opts EditDistanceOptions) []EditDistancePair {
	return editdist.SelfJoin(strs, opts)
}
