// Package fuzzyjoin is a parallel set-similarity join library — a Go
// reproduction of "Efficient Parallel Set-Similarity Joins Using
// MapReduce" (Vernica, Carey, Li — SIGMOD 2010), named after the authors'
// released system.
//
// The library answers set-similarity workloads in two shapes:
//
//   - Batch joins — Join runs the paper's three-stage MapReduce pipeline
//     (token ordering BTO/OPTO, RID-pair generation with prefix filtering
//     BK/PK, record join BRJ/OPRJ, plus the §5 block-processing
//     strategies) over record files or in-memory slices, self-join or
//     R-S join.
//   - Online queries — NewIndex builds a persistent concurrent prefix
//     index (the pipeline's Stage-1 token order + Stage-2 filters in
//     long-lived form) that answers Match(record) lookups at high QPS
//     and ingests new records incrementally.
//
// # Quick start
//
// One batch self-join over in-memory records:
//
//	res, err := fuzzyjoin.Join(ctx, fuzzyjoin.JoinSpec{Records: recs})
//	if err != nil { ... }
//	for _, p := range res.Joined { ... }
//
// The same join over DFS files:
//
//	fs := fuzzyjoin.NewFS(4)
//	fuzzyjoin.WriteRecords(fs, "pubs", recs)
//	res, err := fuzzyjoin.Join(ctx, fuzzyjoin.JoinSpec{
//		Config: fuzzyjoin.Config{FS: fs, Work: "job1"},
//		Input:  "pubs",
//	})
//	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
//
// Online queries against a growing corpus:
//
//	ix, err := fuzzyjoin.NewIndex(ctx, fuzzyjoin.WithCorpus(recs))
//	defer ix.Close()
//	similar, err := ix.Match(ctx, probe)
//	err = ix.Add(newRecord) // visible to the next Match
//
// The zero Config runs the paper's recommended configuration: word
// tokens over title+authors, Jaccard at τ = 0.80, BTO-BK-BRJ with the
// full PPJoin+ filter stack. Set Kernel: fuzzyjoin.PK and RecordJoin:
// fuzzyjoin.OPRJ for the fastest combination the paper measured
// (BTO-PK-OPRJ), or keep BRJ for the most scalable one (BTO-PK-BRJ).
// Or let the cost planner choose from a sample of the workload:
//
//	p, err := fuzzyjoin.Plan(ctx, spec)
//	spec.Config = p.Best.Apply(spec.Config)
//	res, err := fuzzyjoin.Join(ctx, spec)
//
// Joins and queries are cancellable: cancel the ctx and the call
// returns an error matching ErrCanceled at the next task boundary.
//
// # Deprecation policy
//
// Superseded APIs are kept as thin wrappers for one major growth cycle,
// marked with standard "Deprecated:" comments naming the replacement
// (so staticcheck flags remaining callers), then deleted. SelfJoin,
// RSJoin, SelfJoinRecords, and RSJoinRecords are in that state now —
// new code should call Join.
package fuzzyjoin

import (
	"context"
	"fmt"

	"fuzzyjoin/internal/core"
	"fuzzyjoin/internal/dfs"
	"fuzzyjoin/internal/editdist"
	"fuzzyjoin/internal/mapreduce"
	"fuzzyjoin/internal/plan"
	"fuzzyjoin/internal/records"
	"fuzzyjoin/internal/simfn"
	"fuzzyjoin/internal/ssjserve"
)

// Core configuration and result types.
type (
	// Config configures an end-to-end join; see the field docs in
	// internal/core.
	Config = core.Config
	// Result describes a completed join: output location, per-stage
	// metrics, and the pair count.
	Result = core.Result
	// Record is one input record: a unique RID plus fields.
	Record = records.Record
	// JoinedPair is one output pair: two records and their similarity.
	JoinedPair = records.JoinedPair
	// RIDPair is a Stage 2 result (two RIDs and their similarity).
	RIDPair = records.RIDPair
	// FS is the simulated distributed file system joins run on.
	FS = dfs.FS
)

// Stage algorithm choices (see the paper's §3).
const (
	// BTO / OPTO select the Stage 1 token-ordering algorithm.
	BTO  = core.BTO
	OPTO = core.OPTO
	// BK / PK / FVT select the Stage 2 kernel (FVT is the
	// candidate-free Filter-and-Verification Tree, internal/fvt).
	BK  = core.BK
	PK  = core.PK
	FVT = core.FVT
	// BRJ / OPRJ select the Stage 3 record join.
	BRJ  = core.BRJ
	OPRJ = core.OPRJ
	// IndividualTokens / GroupedTokens select Stage 2 routing.
	IndividualTokens = core.IndividualTokens
	GroupedTokens    = core.GroupedTokens
	// NoBlocks / MapBlocks / ReduceBlocks select §5 block processing.
	NoBlocks     = core.NoBlocks
	MapBlocks    = core.MapBlocks
	ReduceBlocks = core.ReduceBlocks
)

// Similarity functions.
const (
	Jaccard = simfn.Jaccard
	Cosine  = simfn.Cosine
	Dice    = simfn.Dice
)

// Fault-tolerance configuration (see the field docs in
// internal/mapreduce): Config.Retry re-executes failed task attempts the
// way Hadoop does, and Config.FaultInjector deterministically fails
// chosen attempts for tests and failure experiments.
type (
	// RetryPolicy bounds attempts per task and shapes the backoff.
	RetryPolicy = mapreduce.RetryPolicy
	// FaultInjector decides which task attempts to fail.
	FaultInjector = mapreduce.FaultInjector
	// TaskRef identifies one task attempt (job, phase, task, attempt).
	TaskRef = mapreduce.TaskRef
	// RateInjector fails a deterministic pseudo-random fraction of tasks.
	RateInjector = mapreduce.RateInjector
	// NodeFailure schedules a DFS node death (or recovery) at a job
	// barrier; see Config.NodeFailures.
	NodeFailure = mapreduce.NodeFailure
	// Barrier is the point in a job a NodeFailure fires at.
	Barrier = mapreduce.Barrier
)

// FailAttempts returns an injector failing exactly the listed attempts.
func FailAttempts(refs ...TaskRef) FaultInjector { return mapreduce.FailAttempts(refs...) }

// Task phases for TaskRef.
const (
	MapPhase    = mapreduce.MapPhase
	ReducePhase = mapreduce.ReducePhase
)

// Node-failure barriers for NodeFailure.Barrier.
const (
	BeforeMap = mapreduce.BeforeMap
	AfterMap  = mapreduce.AfterMap
)

// ErrBlockUnavailable is the DFS error surfaced (wrapped) when every
// replica of a needed block is dead or corrupt — at replication 1 a
// single node death makes the affected job fail cleanly with this.
var ErrBlockUnavailable = dfs.ErrBlockUnavailable

// Record field indices for the bibliographic record layout.
const (
	FieldTitle   = records.FieldTitle
	FieldAuthors = records.FieldAuthors
	FieldRest    = records.FieldRest
)

// FSOption customizes a file system created by NewFS.
type FSOption func(*dfs.Options)

// Replication stores n copies of every block on distinct nodes
// (HDFS-style). n ≥ 2 lets joins survive a node death mid-pipeline; see
// Config.NodeFailures. The default is one replica per block.
func Replication(n int) FSOption {
	return func(o *dfs.Options) { o.Replication = n }
}

// AutoReReplicate re-replicates under-replicated blocks automatically
// after a node failure (the namenode's background repair). It is off by
// default; NewReplicatedFS enables it.
func AutoReReplicate(on bool) FSOption {
	return func(o *dfs.Options) { o.AutoReReplicate = on }
}

// NewFS creates a distributed file system spread over the given number of
// virtual nodes. With no options each block is stored once; pass
// Replication and AutoReReplicate for an HDFS-style fault-tolerant
// system:
//
//	fs := fuzzyjoin.NewFS(4, fuzzyjoin.Replication(2), fuzzyjoin.AutoReReplicate(true))
func NewFS(nodes int, opts ...FSOption) *FS {
	o := dfs.Options{Nodes: nodes}
	for _, opt := range opts {
		opt(&o)
	}
	return dfs.New(o)
}

// WriteRecords stores records as a Text-format DFS file joins can read.
func WriteRecords(fs *FS, name string, recs []Record) error {
	lines := make([]string, len(recs))
	for i, r := range recs {
		lines[i] = r.Line()
	}
	return mapreduce.WriteTextFile(fs, name, lines)
}

// ReadJoinedPairs parses a join's final output (Result.Output).
func ReadJoinedPairs(fs *FS, outputPrefix string) ([]JoinedPair, error) {
	lines, err := mapreduce.ReadLines(fs, outputPrefix+"/")
	if err != nil {
		return nil, err
	}
	out := make([]JoinedPair, 0, len(lines))
	for _, l := range lines {
		if l == "" {
			continue
		}
		jp, err := records.ParseJoinedPair(l)
		if err != nil {
			return nil, err
		}
		out = append(out, jp)
	}
	return out, nil
}

// ErrCanceled is the typed error every canceled execution wraps — batch
// joins whose ctx is canceled mid-pipeline, distributed dispatches
// abandoned mid-flight, and online queries canceled in the pool. Test
// with errors.Is(err, fuzzyjoin.ErrCanceled).
var ErrCanceled = mapreduce.ErrCanceled

// JoinSpec describes one batch join. Exactly one input mode is used:
//
//   - File mode: Input (and InputS for an R-S join) name Text-format
//     DFS files under Config.FS; results land in DFS part files at
//     Result.Output (read them with ReadJoinedPairs).
//   - In-memory mode: Records (and RecordsS) hold the corpus directly;
//     the join provisions a private single-node FS — Config.FS and
//     Config.Work must be unset — and parsed pairs are returned on
//     Result.Joined.
//
// Setting InputS or RecordsS makes the join an R-S join (§4): the token
// dictionary is built from the R side, so pass the smaller relation as
// Input/Records. Otherwise the input is self-joined.
type JoinSpec struct {
	// Config tunes the pipeline (algorithms, threshold, fault
	// tolerance, tracing, distributed execution); the zero value is the
	// paper's recommended configuration.
	Config Config
	// Input and InputS are the file-mode inputs.
	Input  string
	InputS string
	// Records and RecordsS are the in-memory-mode inputs.
	Records  []Record
	RecordsS []Record
}

// Join runs one batch set-similarity join to completion. Canceling ctx
// stops the pipeline at the next task boundary, cleans up its partial
// output, and returns an error wrapping ErrCanceled.
func Join(ctx context.Context, spec JoinSpec) (*Result, error) {
	cfg := spec.Config
	fileMode := spec.Input != "" || spec.InputS != ""
	memMode := spec.Records != nil || spec.RecordsS != nil
	switch {
	case fileMode && memMode:
		return nil, fmt.Errorf("fuzzyjoin: JoinSpec mixes file inputs (%q) and in-memory records; use one mode", spec.Input)
	case !fileMode && !memMode:
		return nil, fmt.Errorf("fuzzyjoin: empty JoinSpec: set Input or Records")
	}

	if fileMode {
		if spec.Input == "" {
			return nil, fmt.Errorf("fuzzyjoin: JoinSpec.InputS set without Input (the R side)")
		}
		if spec.InputS != "" {
			return core.RSJoinContext(ctx, cfg, spec.Input, spec.InputS)
		}
		return core.SelfJoinContext(ctx, cfg, spec.Input)
	}

	if spec.Records == nil {
		return nil, fmt.Errorf("fuzzyjoin: JoinSpec.RecordsS set without Records (the R side)")
	}
	if cfg.FS != nil || cfg.Work != "" {
		return nil, fmt.Errorf("fuzzyjoin: in-memory joins manage FS and Work; leave them unset")
	}
	fs := NewFS(1)
	if err := WriteRecords(fs, "r", spec.Records); err != nil {
		return nil, err
	}
	cfg.FS, cfg.Work = fs, "work"
	var (
		res *Result
		err error
	)
	if spec.RecordsS != nil {
		if err := WriteRecords(fs, "s", spec.RecordsS); err != nil {
			return nil, err
		}
		res, err = core.RSJoinContext(ctx, cfg, "r", "s")
	} else {
		res, err = core.SelfJoinContext(ctx, cfg, "r")
	}
	if err != nil {
		return nil, err
	}
	if res.Joined, err = ReadJoinedPairs(fs, res.Output); err != nil {
		return nil, err
	}
	return res, nil
}

// Cost-planner types (see internal/plan for the model).
type (
	// JoinPlan is the planner's decision: the chosen knob vector
	// (Best), every candidate ranked by predicted makespan, and the
	// input sample the decision was made from. Render() formats it for
	// logs.
	JoinPlan = plan.Plan
	// PlanChoice is one complete knob vector the planner can select:
	// Stage 1/2/3 algorithms, routing, reducer count, bitmap filter,
	// and the hot-token skew split. Apply copies it onto a Config.
	PlanChoice = plan.Choice
	// PlanOptions bounds planner sampling (record budget, head size,
	// stride seed). The zero value is the default policy.
	PlanOptions = plan.Options
)

// Plan chooses a join configuration for the spec's workload without
// running it: it reads a bounded deterministic sample of the input,
// measures the statistics the knob choices are sensitive to (the
// token-frequency head, record lengths, R-S dictionary overlap),
// predicts every candidate knob vector's makespan on the virtual
// cluster, and returns the ranked plan. Planning is advisory and
// admissible — every choice it can emit produces byte-identical join
// output, so a bad prediction can cost time but never correctness.
//
// Use it ahead of Join:
//
//	p, err := fuzzyjoin.Plan(ctx, spec)
//	if err != nil { ... }
//	spec.Config = p.Best.Apply(spec.Config)
//	res, err := fuzzyjoin.Join(ctx, spec)
//
// The spec is interpreted exactly as Join interprets it (file mode
// needs Config.FS; in-memory mode forbids it). The cluster size is
// taken from Config.FS when set, else a small default; sampling follows
// Config's threshold, similarity function, tokenizer, and join fields.
func Plan(ctx context.Context, spec JoinSpec) (*JoinPlan, error) {
	cfg := spec.Config
	fileMode := spec.Input != "" || spec.InputS != ""
	memMode := spec.Records != nil || spec.RecordsS != nil
	switch {
	case fileMode && memMode:
		return nil, fmt.Errorf("fuzzyjoin: JoinSpec mixes file inputs (%q) and in-memory records; use one mode", spec.Input)
	case !fileMode && !memMode:
		return nil, fmt.Errorf("fuzzyjoin: empty JoinSpec: set Input or Records")
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCanceled, err)
	}

	var rLines, sLines []string
	nodes := 4 // representative small cluster for in-memory planning
	if fileMode {
		if spec.Input == "" {
			return nil, fmt.Errorf("fuzzyjoin: JoinSpec.InputS set without Input (the R side)")
		}
		if cfg.FS == nil {
			return nil, fmt.Errorf("fuzzyjoin: file-mode planning needs Config.FS")
		}
		nodes = cfg.FS.Nodes()
		var err error
		if rLines, err = mapreduce.ReadLines(cfg.FS, spec.Input); err != nil {
			return nil, err
		}
		if spec.InputS != "" {
			if sLines, err = mapreduce.ReadLines(cfg.FS, spec.InputS); err != nil {
				return nil, err
			}
		}
	} else {
		if spec.Records == nil {
			return nil, fmt.Errorf("fuzzyjoin: JoinSpec.RecordsS set without Records (the R side)")
		}
		rLines = make([]string, len(spec.Records))
		for i, r := range spec.Records {
			rLines[i] = r.Line()
		}
		if spec.RecordsS != nil {
			sLines = make([]string, len(spec.RecordsS))
			for i, r := range spec.RecordsS {
				sLines[i] = r.Line()
			}
		}
	}

	s, err := plan.New(rLines, sLines, plan.Options{
		Fn:         cfg.Fn,
		Threshold:  cfg.Threshold,
		Tokenizer:  cfg.Tokenizer,
		JoinFields: cfg.JoinFields,
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	return plan.Decide(s, nodes), nil
}

// SelfJoin joins a record file with itself.
//
// Deprecated: Use Join with JoinSpec.Input.
func SelfJoin(cfg Config, input string) (*Result, error) {
	return Join(context.Background(), JoinSpec{Config: cfg, Input: input})
}

// RSJoin joins two record files; inputR should be the smaller relation
// (Stage 1 builds the token dictionary from it).
//
// Deprecated: Use Join with JoinSpec.Input and JoinSpec.InputS.
func RSJoin(cfg Config, inputR, inputS string) (*Result, error) {
	return Join(context.Background(), JoinSpec{Config: cfg, Input: inputR, InputS: inputS})
}

// SelfJoinRecords joins in-memory records with themselves.
//
// Deprecated: Use Join with JoinSpec.Records; pairs are returned on
// Result.Joined.
func SelfJoinRecords(recs []Record, cfg Config) ([]JoinedPair, error) {
	res, err := Join(context.Background(), JoinSpec{Config: cfg, Records: recs})
	if err != nil {
		return nil, err
	}
	return res.Joined, nil
}

// RSJoinRecords joins two in-memory relations.
//
// Deprecated: Use Join with JoinSpec.Records and JoinSpec.RecordsS;
// pairs are returned on Result.Joined.
func RSJoinRecords(r, s []Record, cfg Config) ([]JoinedPair, error) {
	res, err := Join(context.Background(), JoinSpec{Config: cfg, Records: r, RecordsS: s})
	if err != nil {
		return nil, err
	}
	return res.Joined, nil
}

// IndexStats is the online index's metrics snapshot: corpus shape,
// query/ingest counters, cache hit rates, and QPS/p50/p99.
type IndexStats = ssjserve.Stats

// indexConfig collects the functional options of NewIndex.
type indexConfig struct {
	corpus []Record
	opts   ssjserve.Options
}

// IndexOption customizes an Index created by NewIndex.
type IndexOption func(*indexConfig)

// WithCorpus seeds the index with an initial batch-built corpus.
// Without it the index starts empty and grows through Add.
func WithCorpus(recs []Record) IndexOption {
	return func(c *indexConfig) { c.corpus = recs }
}

// WithThreshold sets the similarity threshold τ (default 0.80).
func WithThreshold(tau float64) IndexOption {
	return func(c *indexConfig) { c.opts.Threshold = tau }
}

// WithSimilarity selects the similarity function (default Jaccard).
func WithSimilarity(fn simfn.Func) IndexOption {
	return func(c *indexConfig) { c.opts.Fn = fn }
}

// WithJoinFields selects the record fields concatenated into the join
// attribute (default title + authors).
func WithJoinFields(fields ...int) IndexOption {
	return func(c *indexConfig) { c.opts.JoinFields = fields }
}

// WithShards sets the index shard count (default 8): the token space is
// partitioned across shards, one lock each, so probe and ingest traffic
// on different tokens never contend.
func WithShards(n int) IndexOption {
	return func(c *indexConfig) { c.opts.Shards = n }
}

// WithWorkers sets the query worker-pool size (default GOMAXPROCS).
func WithWorkers(n int) IndexOption {
	return func(c *indexConfig) { c.opts.Workers = n }
}

// WithDriftThreshold sets the lazy re-order trigger: the fraction of
// incrementally added records (relative to the corpus at the last
// build) that forces a fresh Stage-1 token ordering (default 0.25).
func WithDriftThreshold(f float64) IndexOption {
	return func(c *indexConfig) { c.opts.DriftThreshold = f }
}

// WithCacheSize sets the verification-cache capacity in cached pair
// verdicts (default 4096; negative disables caching).
func WithCacheSize(n int) IndexOption {
	return func(c *indexConfig) { c.opts.CacheSize = n }
}

// Index is a persistent, concurrent similarity index — the online
// counterpart to Join. Queries and ingestion are safe to run
// concurrently from any number of goroutines; see internal/ssjserve for
// the sharding, drift re-ordering, and caching design.
type Index struct {
	svc *ssjserve.Service
}

// NewIndex builds an online similarity index. The initial corpus (if
// any) is indexed synchronously before NewIndex returns; ctx cancels
// that build.
func NewIndex(ctx context.Context, opts ...IndexOption) (*Index, error) {
	var c indexConfig
	for _, opt := range opts {
		opt(&c)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCanceled, err)
	}
	svc, err := ssjserve.NewService(c.opts, c.corpus)
	if err != nil {
		return nil, err
	}
	return &Index{svc: svc}, nil
}

// Match returns every indexed record similar to probe (sim ≥ τ) as
// JoinedPairs with the indexed record on the left. Probing with an
// already-indexed record returns its neighbors, not itself. Canceling
// ctx abandons the query with an error wrapping ErrCanceled.
func (ix *Index) Match(ctx context.Context, probe Record) ([]JoinedPair, error) {
	return ix.svc.Match(ctx, probe)
}

// MatchBatch answers a batch of probes through one admission (answers
// aligned with probes).
func (ix *Index) MatchBatch(ctx context.Context, probes []Record) ([][]JoinedPair, error) {
	return ix.svc.MatchBatch(ctx, probes)
}

// Add ingests one record incrementally; it is visible to the next
// Match. No Stage-1 rebuild runs unless token-frequency drift crosses
// the configured threshold.
func (ix *Index) Add(rec Record) error { return ix.svc.Add(rec) }

// Stats snapshots the index metrics.
func (ix *Index) Stats() IndexStats { return ix.svc.Stats() }

// Close stops the query workers; subsequent calls fail.
func (ix *Index) Close() error { return ix.svc.Close() }

// Edit-distance joins (the application the paper's footnote 1 points at).
type (
	// EditDistanceOptions configures an edit-distance join (threshold K,
	// q-gram length Q).
	EditDistanceOptions = editdist.Options
	// EditDistancePair is one edit-distance join result: indices into
	// the input slice and the exact distance.
	EditDistancePair = editdist.Pair
)

// EditDistance returns the exact Levenshtein distance between two
// strings.
func EditDistance(a, b string) int { return editdist.Distance(a, b) }

// EditDistanceSelfJoin finds all string pairs within edit distance
// opts.K, using q-gram count filtering, prefix filtering, and banded
// verification.
func EditDistanceSelfJoin(strs []string, opts EditDistanceOptions) []EditDistancePair {
	return editdist.SelfJoin(strs, opts)
}
