// Command ssjserve runs the online similarity-join service: it builds
// the token order and the length-segmented prefix index over a corpus,
// then serves similarity queries and incremental ingestion over HTTP
// (see internal/ssjserve for the API and design).
//
// Serve a corpus file (tab-separated record lines, like the batch CLI):
//
//	ssjserve -corpus pubs.tsv -addr :8080
//
// With no -corpus a seeded synthetic corpus is generated (-seed,
// -records), which is how the smoke gate runs it.
//
// Query it:
//
//	curl -s localhost:8080/match -d '{"rid":99,"fields":["parallel set similarity joins","vernica carey li",""]}'
//	curl -s localhost:8080/add   -d '{"rid":100,"fields":["a new publication","somebody",""]}'
//	curl -s localhost:8080/stats
//
// Self-check mode (-selfcheck N) is the CI smoke gate: the server
// listens on an ephemeral port, a client drives N queries — interleaved
// with incremental /add ingestion — through real HTTP, every answer is
// diffed against the brute-force oracle, the metrics document lands at
// -metrics-out, and the server shuts down cleanly. Exit status 0 only
// if every answer matched.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fuzzyjoin/internal/conformance"
	"fuzzyjoin/internal/records"
	"fuzzyjoin/internal/simfn"
	"fuzzyjoin/internal/ssjserve"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "listen address")
		corpus  = flag.String("corpus", "", "record file to index (tab-separated lines; empty = seeded synthetic corpus)")
		seed    = flag.Int64("seed", 1, "synthetic corpus seed (when -corpus is empty)")
		nrec    = flag.Int("records", 200, "synthetic corpus size (when -corpus is empty)")
		fnName  = flag.String("fn", "jaccard", "similarity function: jaccard, cosine, dice")
		tau     = flag.Float64("threshold", 0.8, "similarity threshold")
		shards  = flag.Int("shards", 0, "index shard count (0 = default 8)")
		workers = flag.Int("workers", 0, "query worker pool size (0 = GOMAXPROCS)")
		drift   = flag.Float64("drift", 0, "token-frequency drift fraction that triggers a lazy re-order (0 = default 0.25)")
		cache   = flag.Int("cache", 0, "verification cache capacity in pair verdicts (0 = default 4096, negative disables)")

		selfcheck  = flag.Int("selfcheck", 0, "smoke mode: serve on an ephemeral port, run N queries over HTTP, diff each against the oracle, then exit")
		metricsOut = flag.String("metrics-out", "", "write the final Stats document as JSON to this file on shutdown")
	)
	flag.Parse()

	fn, err := simfn.ParseFunc(*fnName)
	if err != nil {
		fatal(err)
	}
	opts := ssjserve.Options{
		Fn:             fn,
		Threshold:      *tau,
		Shards:         *shards,
		Workers:        *workers,
		DriftThreshold: *drift,
		CacheSize:      *cache,
	}

	var recs []records.Record
	if *corpus != "" {
		if recs, err = loadCorpus(*corpus); err != nil {
			fatal(err)
		}
	} else {
		w := conformance.Workload{Records: *nrec, Seed: *seed}
		recs = w.SelfRecords()
	}

	if *selfcheck > 0 {
		if err := runSelfcheck(recs, opts, *selfcheck, *metricsOut); err != nil {
			fatal(err)
		}
		return
	}

	svc, err := ssjserve.NewService(opts, recs)
	if err != nil {
		fatal(err)
	}
	st := svc.Stats()
	fmt.Fprintf(os.Stderr, "ssjserve: %d records, %d tokens, %d shards, tau %.2f, serving on %s\n",
		st.Records, st.Tokens, st.Shards, *tau, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Addr: *addr, Handler: ssjserve.NewHandler(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, drain in-flight requests, then
	// stop the worker pool and flush the metrics document.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "ssjserve: shutdown:", err)
	}
	final := svc.Stats()
	svc.Close()
	if err := writeStats(*metricsOut, final); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ssjserve: served %d queries (%d pairs), stopped cleanly\n",
		final.Queries, final.Pairs)
}

// runSelfcheck is the smoke gate: a real HTTP server on an ephemeral
// port, n queries driven through it, every answer diffed against the
// brute-force oracle. The first third of the queries runs against the
// initial corpus; then the remaining workload records are ingested
// through POST /add and the rest of the queries check the grown corpus.
func runSelfcheck(recs []records.Record, opts ssjserve.Options, n int, metricsOut string) error {
	split := len(recs) * 2 / 3
	if split < 1 {
		split = 1
	}
	base, rest := recs[:split], recs[split:]

	svc, err := ssjserve.NewService(opts, base)
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: ssjserve.NewHandler(svc)}
	go srv.Serve(ln)
	url := "http://" + ln.Addr().String()
	fmt.Printf("selfcheck: serving %d records on %s\n", len(base), url)

	p := conformance.Params{Fn: opts.Fn, Threshold: opts.Threshold}

	query := func(i int, corpus []records.Record) error {
		probe := recs[i%len(recs)]
		got, err := httpMatch(url, probe)
		if err != nil {
			return fmt.Errorf("query %d: %w", i, err)
		}
		want := conformance.ServeOracle(corpus, probe, p)
		if d := diffPairs(got, want); d != "" {
			return fmt.Errorf("query %d (probe rid=%d): %s", i, probe.RID, d)
		}
		return nil
	}

	// Phase 1: a third of the budget against the initial corpus.
	phase1 := n / 3
	for i := 0; i < phase1; i++ {
		if err := query(i, base); err != nil {
			return err
		}
	}
	// Ingest the held-out records through the HTTP API.
	for _, r := range rest {
		if err := httpAdd(url, r); err != nil {
			return fmt.Errorf("add rid=%d: %w", r.RID, err)
		}
	}
	// Phase 2: the rest of the budget against the grown corpus.
	for i := phase1; i < n; i++ {
		if err := query(i, recs); err != nil {
			return err
		}
	}

	st := svc.Stats()
	if err := writeStats(metricsOut, st); err != nil {
		return err
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Printf("selfcheck: %d queries matched the oracle (%d added via HTTP, %d reorders, %d cache hits)\n",
		n, len(rest), st.Reorders, st.CacheHits)
	return nil
}

// httpMatch runs one POST /match round trip.
func httpMatch(url string, probe records.Record) ([]records.JoinedPair, error) {
	body, err := postJSON(url+"/match", ssjserve.RecordJSON{RID: probe.RID, Fields: probe.Fields})
	if err != nil {
		return nil, err
	}
	var reply ssjserve.MatchReply
	if err := json.Unmarshal(body, &reply); err != nil {
		return nil, err
	}
	pairs := make([]records.JoinedPair, len(reply.Pairs))
	for i, p := range reply.Pairs {
		pairs[i] = records.JoinedPair{
			Left:  records.Record{RID: p.Left.RID, Fields: p.Left.Fields},
			Right: records.Record{RID: p.Right.RID, Fields: p.Right.Fields},
			Sim:   p.Sim,
		}
	}
	return pairs, nil
}

// httpAdd runs one POST /add round trip.
func httpAdd(url string, rec records.Record) error {
	_, err := postJSON(url+"/add", ssjserve.RecordJSON{RID: rec.RID, Fields: rec.Fields})
	return err
}

func postJSON(url string, v any) ([]byte, error) {
	doc, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(doc))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(buf.String()))
	}
	return buf.Bytes(), nil
}

// diffPairs compares an HTTP answer against the oracle's answer set;
// both compute similarity from identical integer overlaps, so the
// floats must match exactly even across the JSON round trip.
func diffPairs(got, want []records.JoinedPair) string {
	byRID := func(ps []records.JoinedPair) map[uint64]float64 {
		m := make(map[uint64]float64, len(ps))
		for _, p := range ps {
			m[p.Left.RID] = p.Sim
		}
		return m
	}
	gm, wm := byRID(got), byRID(want)
	for rid, sim := range wm {
		g, ok := gm[rid]
		if !ok {
			return fmt.Sprintf("missing pair rid=%d (sim %v)", rid, sim)
		}
		if g != sim {
			return fmt.Sprintf("pair rid=%d: sim %v, oracle %v", rid, g, sim)
		}
	}
	for rid := range gm {
		if _, ok := wm[rid]; !ok {
			return fmt.Sprintf("spurious pair rid=%d", rid)
		}
	}
	return ""
}

// loadCorpus reads tab-separated record lines from a local file.
func loadCorpus(path string) ([]records.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []records.Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		r, err := records.ParseLine(line)
		if err != nil {
			return nil, err
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// writeStats records the metrics document (stdout-adjacent artifact for
// CI; skipped when no path is given).
func writeStats(path string, st ssjserve.Stats) error {
	if path == "" {
		return nil
	}
	doc, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(doc, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ssjserve:", err)
	os.Exit(1)
}
