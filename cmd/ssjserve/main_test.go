package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fuzzyjoin/internal/conformance"
	"fuzzyjoin/internal/ssjserve"
)

func TestLoadCorpus(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "recs.tsv")
	content := "1\ttitle one\tauthor\trest\n\n2\ttitle two\tauthor\trest\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, err := loadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].RID != 1 || recs[1].Fields[0] != "title two" {
		t.Fatalf("recs = %+v", recs)
	}
	if _, err := loadCorpus(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("loadCorpus accepted a missing path")
	}
	bad := filepath.Join(dir, "bad.tsv")
	if err := os.WriteFile(bad, []byte("not a record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCorpus(bad); err == nil {
		t.Fatal("loadCorpus accepted a malformed line")
	}
}

// TestSelfcheckEndToEnd drives the smoke gate in-process: a real HTTP
// server, oracle-diffed queries, HTTP ingestion, and a metrics artifact.
func TestSelfcheckEndToEnd(t *testing.T) {
	w := conformance.Workload{Records: 60, Seed: 3}
	out := filepath.Join(t.TempDir(), "metrics.json")
	err := runSelfcheck(w.SelfRecords(), ssjserve.Options{Threshold: 0.8}, 50, out)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var st ssjserve.Stats
	if err := json.Unmarshal(doc, &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != 50 || st.Adds == 0 || st.Schema == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
