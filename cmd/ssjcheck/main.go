// Command ssjcheck is the conformance harness CLI: it generates a
// seeded randomized workload, sweeps every pipeline variant in the
// configuration matrix (stage combos × join kind × routing × block
// processing × hot-token skew split × FVT build path × bitmap filter ×
// execution mode) against an exact record-level oracle,
// and checks the metamorphic invariant suite. Any divergence is
// reported with a minimized reproducer — the exact ssjcheck command
// line that re-creates it.
//
// Usage:
//
//	ssjcheck [-seed S] [-records N] [-vocab V] [-tau T]
//	         [-skew Z] [-neardup R] [-title-min N] [-title-max N] [-overlap F]
//	         [-join self,rs] [-combo LIST] [-routing LIST] [-blocks LIST]
//	         [-split LIST] [-build LIST] [-bitmap LIST] [-exec LIST]
//	         [-workers N] [-chaos RATE] [-chaos-seed S]
//	         [-sweep] [-invariants] [-serve] [-minimize] [-v]
//
// The matrix filters take comma-separated allowlists (empty = all):
// combos like "BTO-PK-BRJ,OPTO-FVT-OPRJ" (kernels BK, PK, FVT),
// routings "individual,grouped", blocks "none,map,reduce", hot-token
// split fan-outs "0,2,4", FVT build paths "bulk,incr", bitmaps
// "off,on", execs "plain,faults,parallel,dist".
//
// "dist" cells dispatch task attempts to -workers forked worker
// processes over RPC; -chaos additionally SIGKILLs workers mid-task on
// a seeded deterministic schedule, and the sweep still requires every
// cell to match the oracle exactly.
//
// Exit status is 0 when every variant matches the oracle and every
// invariant holds, 1 otherwise.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"fuzzyjoin/internal/conformance"
	"fuzzyjoin/internal/distrib"
)

func main() {
	distrib.MaybeWorker()
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ssjcheck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		seed     = fs.Int64("seed", 1, "workload generation seed")
		nrec     = fs.Int("records", 0, "corpus size per relation (default 40)")
		vocab    = fs.Int("vocab", 0, "token dictionary size (default 512)")
		tau      = fs.Float64("tau", 0, "similarity threshold (default 0.8)")
		skew     = fs.Float64("skew", 0, "Zipf token-frequency exponent (default 1.3)")
		neardup  = fs.Float64("neardup", 0, "near-duplicate fraction (default 0.2; negative disables)")
		titleMin = fs.Int("title-min", 0, "minimum title length in words (default 6)")
		titleMax = fs.Int("title-max", 0, "maximum title length in words (default 12)")
		overlap  = fs.Float64("overlap", 0, "fraction of S derived from R in R-S workloads (default 0.5)")

		joins    = fs.String("join", "", "join kinds to sweep: self,rs (empty = both)")
		combos   = fs.String("combo", "", "stage combos to sweep, e.g. BTO-PK-BRJ (empty = all twelve)")
		routings = fs.String("routing", "", "token routings to sweep: individual,grouped (empty = both)")
		blocks   = fs.String("blocks", "", "block modes to sweep: none,map,reduce (empty = all)")
		splits   = fs.String("split", "", "hot-token split fan-outs to sweep: 0,2,4 (empty = all)")
		builds   = fs.String("build", "", "FVT build paths to sweep: bulk,incr (empty = both)")
		bitmaps  = fs.String("bitmap", "", "bitmap filter settings to sweep: off,on (empty = both)")
		execs    = fs.String("exec", "", "execution modes to sweep: plain,faults,parallel,dist (empty = all)")

		workers   = fs.Int("workers", 0, "worker processes to fork for dist cells (0 = skip dist cells unless -exec selects them, then 2)")
		chaos     = fs.Float64("chaos", 0, "SIGKILL workers mid-task for this fraction of dist dispatches (seeded, deterministic)")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed selecting which dist dispatches the chaos kills hit")

		sweep      = fs.Bool("sweep", true, "run the matrix sweep against the oracle")
		invariants = fs.Bool("invariants", true, "run the metamorphic invariant suite")
		serve      = fs.Bool("serve", false, "differentially verify the online service (ssjserve): every Match answer must equal the oracle, including after incremental ingestion")
		minimize   = fs.Bool("minimize", true, "shrink failing workloads before reporting")
		verbose    = fs.Bool("v", false, "log every variant and invariant as it runs")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "ssjcheck: unexpected arguments %q\n", fs.Args())
		return 2
	}

	w := conformance.Workload{
		Records:     *nrec,
		Seed:        *seed,
		Vocab:       *vocab,
		Skew:        *skew,
		TitleMin:    *titleMin,
		TitleMax:    *titleMax,
		NearDupRate: *neardup,
		Overlap:     *overlap,
	}
	p := conformance.Params{Threshold: *tau}

	logf := func(string, ...any) {}
	if *verbose {
		logf = func(format string, args ...any) {
			fmt.Fprintf(stdout, format+"\n", args...)
		}
	}

	failures := 0
	if *sweep {
		filter := conformance.Filter{
			Joins:    *joins,
			Combos:   *combos,
			Routings: *routings,
			Blocks:   *blocks,
			Splits:   *splits,
			Builds:   *builds,
			Bitmaps:  *bitmaps,
			Execs:    *execs,
		}
		// Without an explicit -exec or -workers, sweep the in-process
		// modes only: dist cells need a worker fleet.
		if *execs == "" && *workers == 0 {
			filter.Execs = "plain,faults,parallel"
		}
		variants, err := conformance.Matrix(filter)
		if err != nil {
			fmt.Fprintln(stderr, "ssjcheck:", err)
			return 2
		}
		if len(variants) == 0 {
			fmt.Fprintln(stderr, "ssjcheck: matrix filter selected no variants")
			return 2
		}
		needDist := false
		for _, v := range variants {
			if v.Exec == conformance.ExecDist {
				needDist = true
				break
			}
		}
		var sess *distrib.Session
		if needDist {
			n := *workers
			if n <= 0 {
				n = 2
			}
			opts := distrib.Options{Workers: n, Stderr: stderr}
			if *chaos > 0 {
				opts.Kill = &distrib.KillSpec{Rate: *chaos, Seed: *chaosSeed, MaxKills: n - 1}
			}
			sess, err = distrib.Start(opts)
			if err != nil {
				fmt.Fprintln(stderr, "ssjcheck:", err)
				return 2
			}
			defer sess.Close()
			p.Runner = sess.Runner
			fmt.Fprintf(stdout, "dist: %d worker processes forked (chaos rate %g)\n", n, *chaos)
		}
		start := time.Now()
		rep := conformance.Sweep(w, p, variants, conformance.SweepOptions{
			Logf:       logf,
			NoMinimize: !*minimize,
		})
		oracle := ""
		if rep.OraclePairsSelf >= 0 {
			oracle += fmt.Sprintf(" self=%d", rep.OraclePairsSelf)
		}
		if rep.OraclePairsRS >= 0 {
			oracle += fmt.Sprintf(" rs=%d", rep.OraclePairsRS)
		}
		fmt.Fprintf(stdout, "sweep: %d variants, seed %d, %d records, oracle pairs%s (%v)\n",
			rep.Variants, rep.Workload.Seed, rep.Workload.Records, oracle,
			time.Since(start).Round(time.Millisecond))
		for _, d := range rep.Divergences {
			fmt.Fprintf(stdout, "DIVERGENCE %s\n", d)
		}
		failures += len(rep.Divergences)
		if sess != nil && *chaos > 0 {
			fmt.Fprintf(stdout, "chaos: %d worker kill(s) fired, %d worker(s) still live\n",
				sess.Runner.Kills(), sess.Coord.LiveWorkers())
		}
	}
	if *invariants {
		start := time.Now()
		fails := conformance.CheckInvariants(w, p, logf)
		fmt.Fprintf(stdout, "invariants: 4 checked, %d failed (%v)\n",
			len(fails), time.Since(start).Round(time.Millisecond))
		for _, f := range fails {
			fmt.Fprintf(stdout, "INVARIANT %s\n", f)
		}
		failures += len(fails)
	}
	if *serve {
		start := time.Now()
		serveShards := []int{1, 8}
		serveFails := 0
		for _, shards := range serveShards {
			logf("serve: shards=%d", shards)
			if err := conformance.ServeCheck(w, p, shards); err != nil {
				fmt.Fprintf(stdout, "SERVE %v\n", err)
				serveFails++
			}
		}
		fmt.Fprintf(stdout, "serve: %d shard counts checked, %d failed (%v)\n",
			len(serveShards), serveFails, time.Since(start).Round(time.Millisecond))
		failures += serveFails
	}
	if !*sweep && !*invariants && !*serve {
		fmt.Fprintln(stderr, "ssjcheck: nothing to do (-sweep=false -invariants=false)")
		return 2
	}
	if failures > 0 {
		fmt.Fprintf(stdout, "FAIL: %d divergence(s)\n", failures)
		return 1
	}
	fmt.Fprintln(stdout, "PASS: all variants conform")
	return 0
}
