package main

import (
	"os"
	"strings"
	"testing"

	"fuzzyjoin/internal/distrib"
)

// TestMain lets dist sweeps fork this test binary as worker processes.
func TestMain(m *testing.M) {
	distrib.MaybeWorker()
	os.Exit(m.Run())
}

// TestRunSmallSweep drives the CLI end to end on a tiny matrix subset.
func TestRunSmallSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-seed", "3", "-records", "24",
		"-combo", "BTO-PK-BRJ", "-exec", "plain",
		"-invariants=false",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("no PASS line in output: %s", out.String())
	}
	if !strings.Contains(out.String(), "sweep: 24 variants") { // 2 joins × 2 routings × 3 splits × 2 bitmap settings
		t.Fatalf("unexpected variant count: %s", out.String())
	}
}

// TestRunDistSweep drives the CLI's distributed backend: a dist-only
// sweep on forked worker processes with the chaos harness armed.
func TestRunDistSweep(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{
		"-seed", "3", "-records", "24",
		"-combo", "BTO-PK-BRJ", "-routing", "individual", "-exec", "dist",
		"-workers", "2", "-chaos", "0.4",
		"-invariants=false", "-minimize=false",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "PASS") {
		t.Fatalf("no PASS line in output: %s", out.String())
	}
	if !strings.Contains(out.String(), "dist: 2 worker processes forked") {
		t.Fatalf("no worker session line in output: %s", out.String())
	}
}

func TestRunInvariantsOnly(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-seed", "4", "-records", "24", "-sweep=false"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "invariants: 4 checked, 0 failed") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-blocks", "mpa"},                    // typo'd filter value
		{"-sweep=false", "-invariants=false"}, // nothing to do
		{"stray-arg"},                         // positional args
		{"-no-such-flag"},                     // unknown flag
	} {
		var out, errOut strings.Builder
		if code := run(args, &out, &errOut); code != 2 {
			t.Errorf("run(%q) exit %d, want 2 (stderr: %s)", args, code, errOut.String())
		}
	}
}
