// Command bench2json converts `go test -bench` output on stdin to a JSON
// document on stdout, echoing the raw input to stderr so interactive runs
// still show the familiar benchmark lines.
//
//	go test -bench=. -benchmem -count=3 ./internal/mapreduce | bench2json > BENCH_engine.json
//
// Each benchmark result line becomes one entry; repeated counts of the
// same benchmark (from -count=N) stay separate entries so variance is
// preserved in the recorded file.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	var rep Report
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				rep.Results = append(rep.Results, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseLine parses one benchmark result line, e.g.
//
//	BenchmarkSortPairs-8  38  31714634 ns/op  0 B/op  0 allocs/op
func parseLine(line string) (Result, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || f[3] != "ns/op" {
		return Result{}, false
	}
	iters, err1 := strconv.ParseInt(f[1], 10, 64)
	ns, err2 := strconv.ParseFloat(f[2], 64)
	if err1 != nil || err2 != nil {
		return Result{}, false
	}
	r := Result{Name: f[0], Iterations: iters, NsPerOp: ns}
	for i := 4; i+1 < len(f); i += 2 {
		n, err := strconv.ParseInt(f[i], 10, 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "B/op":
			r.BytesPerOp = n
		case "allocs/op":
			r.AllocsPerOp = n
		}
	}
	return r, true
}
