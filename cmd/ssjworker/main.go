// Command ssjworker is a standalone worker process for the distributed
// execution backend (internal/distrib): it dials a coordinator, serves
// map/reduce task attempts over RPC, and exits when the coordinator
// goes away or declares it dead.
//
// The usual way to get workers is to let a coordinator-side command
// fork them (fuzzyjoin -transport rpc, ssjcheck -workers n); those
// forks re-exec the parent binary. ssjworker exists for running workers
// by hand against a program that embeds distrib.NewCoordinator — e.g.
// to attach an extra worker to a live session, or to observe a worker's
// lifecycle in isolation:
//
//	ssjworker -coordinator 127.0.0.1:41234 -index 1 -slots 2
//
// The flags mirror the SSJ_DISTRIB_COORD, SSJ_WORKER_INDEX, and
// SSJ_WORKER_SLOTS environment variables a forked worker receives.
package main

import (
	"flag"
	"fmt"
	"os"

	"fuzzyjoin/internal/distrib"
)

func main() {
	var (
		coord = flag.String("coordinator", os.Getenv(distrib.EnvCoord), "coordinator RPC address (required; defaults to $"+distrib.EnvCoord+")")
		index = flag.Int("index", envInt(distrib.EnvIndex, 0), "worker index, for crash-hook targeting and logs")
		slots = flag.Int("slots", envInt(distrib.EnvSlots, 1), "concurrent task executions this worker accepts")
	)
	flag.Parse()
	if *coord == "" {
		fmt.Fprintln(os.Stderr, "ssjworker: no coordinator address (-coordinator or $"+distrib.EnvCoord+")")
		flag.Usage()
		os.Exit(2)
	}
	os.Setenv(distrib.EnvIndex, fmt.Sprint(*index))
	os.Setenv(distrib.EnvSlots, fmt.Sprint(*slots))
	if err := distrib.WorkerMain(*coord); err != nil {
		fmt.Fprintln(os.Stderr, "ssjworker:", err)
		os.Exit(1)
	}
}

func envInt(name string, def int) int {
	n := def
	if s := os.Getenv(name); s != "" {
		fmt.Sscanf(s, "%d", &n)
	}
	return n
}
