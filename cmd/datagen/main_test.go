package main

import (
	"os"
	"runtime"
	"strings"
	"testing"
)

// goldenOpts is the invocation pinned by the committed golden file:
// datagen -n 16 -seed 7 -factor 2 -style dblp.
var goldenOpts = corpusOpts{N: 16, Style: "dblp", Seed: 7, Factor: 2, StartRID: 1}

func render(t *testing.T, o corpusOpts) string {
	t.Helper()
	recs, err := buildCorpus(o)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := writeCorpus(&b, recs); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestGoldenCorpus pins generator output byte-for-byte: a refactor that
// reorders RNG draws or changes defaults shows up as a golden diff, not
// as silently different experiment corpora. Regenerate deliberately
// with:
//
//	go run ./cmd/datagen -n 16 -seed 7 -factor 2 -style dblp \
//	    -out cmd/datagen/testdata/golden_dblp_n16_x2_seed7.tsv
func TestGoldenCorpus(t *testing.T) {
	want, err := os.ReadFile("testdata/golden_dblp_n16_x2_seed7.tsv")
	if err != nil {
		t.Fatal(err)
	}
	got := render(t, goldenOpts)
	if got != string(want) {
		t.Fatalf("generator output diverged from committed golden file\ngot %d bytes, want %d\nfirst got line:  %.120s\nfirst want line: %.120s",
			len(got), len(want), firstLine(got), firstLine(string(want)))
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// TestSameSeedSameBytes re-runs the same invocation in-process and
// across GOMAXPROCS settings; generation must not depend on scheduling.
func TestSameSeedSameBytes(t *testing.T) {
	base := render(t, goldenOpts)
	if again := render(t, goldenOpts); again != base {
		t.Fatal("same options produced different bytes on the second run")
	}
	prev := runtime.GOMAXPROCS(1)
	one := render(t, goldenOpts)
	runtime.GOMAXPROCS(8)
	eight := render(t, goldenOpts)
	runtime.GOMAXPROCS(prev)
	if one != base || eight != base {
		t.Fatal("generator output depends on GOMAXPROCS")
	}
	// The overlap path (S-side corpora) is seeded too.
	s := corpusOpts{N: 12, Style: "citeseer", Seed: 7, Factor: 1, Overlap: 0.5, BaseN: 16, StartRID: 1}
	if render(t, s) != render(t, s) {
		t.Fatal("overlapping corpus not deterministic")
	}
}

func TestBuildCorpusRejectsUnknownStyle(t *testing.T) {
	if _, err := buildCorpus(corpusOpts{N: 1, Style: "nyt"}); err == nil {
		t.Fatal("unknown style accepted")
	}
}
