// Command datagen generates the synthetic bibliographic corpora the
// experiments use (the DBLP/CITESEERX substitutes) and applies the
// paper's ×n "increase" method, writing tab-separated record lines to
// stdout or a file.
//
//	datagen -n 5000 -style dblp -factor 10 -out dblp_x10.tsv
//
// Two corpora for an R-S join should share one -seed and use -overlap on
// the S side so cross-relation near-duplicates exist:
//
//	datagen -n 4800 -style dblp -seed 42 -out r.tsv
//	datagen -n 5200 -style citeseer -seed 42 -overlap 0.5 -out s.tsv
//
// Output is a pure function of the flags: the same invocation produces
// byte-identical corpora on every run, platform, and GOMAXPROCS setting
// (the golden test in this package pins that).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"fuzzyjoin/internal/datagen"
	"fuzzyjoin/internal/records"
)

// corpusOpts mirrors the command-line flags.
type corpusOpts struct {
	N        int
	Style    string
	Seed     int64
	Factor   int
	Overlap  float64
	BaseN    int
	StartRID uint64
}

// buildCorpus generates the corpus an invocation with these options
// writes. Deterministic: equal options always yield equal records.
func buildCorpus(o corpusOpts) ([]records.Record, error) {
	spec := datagen.Spec{Records: o.N, Seed: o.Seed, StartRID: o.StartRID}
	switch o.Style {
	case "dblp":
		spec.Style = datagen.DBLPLike
	case "citeseer":
		spec.Style = datagen.CiteseerLike
	default:
		return nil, fmt.Errorf("unknown style %q", o.Style)
	}

	var recs []records.Record
	if o.Overlap > 0 {
		base := datagen.Generate(datagen.Spec{Records: o.BaseN, Seed: o.Seed, Style: datagen.DBLPLike})
		if spec.StartRID == 1 {
			spec.StartRID = uint64(o.BaseN) * 100
		}
		recs = datagen.GenerateOverlapping(base, spec, o.Overlap)
	} else {
		recs = datagen.Generate(spec)
	}
	return datagen.Increase(recs, o.Factor), nil
}

// writeCorpus renders the records in the tab-separated line format.
func writeCorpus(w io.Writer, recs []records.Record) error {
	bw := bufio.NewWriter(w)
	for _, r := range recs {
		fmt.Fprintln(bw, r.Line())
	}
	return bw.Flush()
}

func main() {
	var (
		o   corpusOpts
		out = flag.String("out", "", "output file; defaults to stdout")
	)
	flag.IntVar(&o.N, "n", 5000, "records in the base (x1) corpus")
	flag.StringVar(&o.Style, "style", "dblp", "corpus style: dblp or citeseer")
	flag.Int64Var(&o.Seed, "seed", 42, "generation seed")
	flag.IntVar(&o.Factor, "factor", 1, "apply the paper's xN increase method")
	flag.Float64Var(&o.Overlap, "overlap", 0, "fraction of records derived from a same-seed DBLP-like corpus (for the S side of an R-S join)")
	flag.IntVar(&o.BaseN, "overlapBase", 4800, "size of the same-seed base corpus -overlap derives from")
	flag.Uint64Var(&o.StartRID, "startRID", 1, "first RID")
	flag.Parse()

	recs, err := buildCorpus(o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := writeCorpus(w, recs); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d records (%s, avg %d B)\n",
		len(recs), o.Style, datagen.AvgRecordBytes(recs))
}
