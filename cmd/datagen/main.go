// Command datagen generates the synthetic bibliographic corpora the
// experiments use (the DBLP/CITESEERX substitutes) and applies the
// paper's ×n "increase" method, writing tab-separated record lines to
// stdout or a file.
//
//	datagen -n 5000 -style dblp -factor 10 -out dblp_x10.tsv
//
// Two corpora for an R-S join should share one -seed and use -overlap on
// the S side so cross-relation near-duplicates exist:
//
//	datagen -n 4800 -style dblp -seed 42 -out r.tsv
//	datagen -n 5200 -style citeseer -seed 42 -overlap 0.5 -out s.tsv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"fuzzyjoin/internal/datagen"
	"fuzzyjoin/internal/records"
)

func main() {
	var (
		n       = flag.Int("n", 5000, "records in the base (x1) corpus")
		style   = flag.String("style", "dblp", "corpus style: dblp or citeseer")
		seed    = flag.Int64("seed", 42, "generation seed")
		factor  = flag.Int("factor", 1, "apply the paper's xN increase method")
		overlap = flag.Float64("overlap", 0, "fraction of records derived from a same-seed DBLP-like corpus (for the S side of an R-S join)")
		baseN   = flag.Int("overlapBase", 4800, "size of the same-seed base corpus -overlap derives from")
		start   = flag.Uint64("startRID", 1, "first RID")
		out     = flag.String("out", "", "output file; defaults to stdout")
	)
	flag.Parse()

	spec := datagen.Spec{Records: *n, Seed: *seed, StartRID: *start}
	switch *style {
	case "dblp":
		spec.Style = datagen.DBLPLike
	case "citeseer":
		spec.Style = datagen.CiteseerLike
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown style %q\n", *style)
		os.Exit(2)
	}

	var recs []records.Record
	if *overlap > 0 {
		base := datagen.Generate(datagen.Spec{Records: *baseN, Seed: *seed, Style: datagen.DBLPLike})
		if spec.StartRID == 1 {
			spec.StartRID = uint64(*baseN) * 100
		}
		recs = datagen.GenerateOverlapping(base, spec, *overlap)
	} else {
		recs = datagen.Generate(spec)
	}
	recs = datagen.Increase(recs, *factor)

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, r := range recs {
		fmt.Fprintln(w, r.Line())
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d records (%s, avg %d B)\n",
		len(recs), spec.Style, datagen.AvgRecordBytes(recs))
}
