// Command fuzzyjoin runs an end-to-end set-similarity join over record
// files on the local file system (tab-separated lines: RID, title,
// authors, rest — see internal/records).
//
// Self-join:
//
//	fuzzyjoin -in pubs.tsv -out pairs.txt
//
// R-S join (R should be the smaller relation):
//
//	fuzzyjoin -in dblp.tsv -in2 citeseer.tsv -out pairs.txt
//
// Flags select the per-stage algorithms the paper studies; the default
// BTO-PK-BRJ is the combination the paper recommends as robust and
// scalable. Or let the cost planner choose: -plan auto samples the
// input, predicts every configuration's makespan on the virtual
// cluster, prints the ranking to stderr, and runs the cheapest:
//
//	fuzzyjoin -in pubs.tsv -plan auto -out pairs.txt
//
// Hot-token skew splitting (-split k -split-hot h) spreads each of the
// h most frequent tokens' reduce groups across k salted sub-keys with a
// merge-side dedup pass — identical output, bounded reducer skew.
//
// Distributed mode (-transport rpc, -workers n) forks n worker
// processes and dispatches every task attempt to them over RPC; output
// is byte-identical to the in-process run, including when workers are
// killed mid-task:
//
//	fuzzyjoin -in pubs.tsv -workers 2 -out pairs.txt
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"fuzzyjoin"
	"fuzzyjoin/internal/core"
	"fuzzyjoin/internal/distrib"
	"fuzzyjoin/internal/simfn"
)

func main() {
	// When forked by a -transport rpc parent, this process is a worker:
	// MaybeWorker serves tasks until the coordinator goes away and never
	// returns.
	distrib.MaybeWorker()
	var (
		in     = flag.String("in", "", "input record file (required)")
		in2    = flag.String("in2", "", "second input for an R-S join (optional)")
		out    = flag.String("out", "", "output file; defaults to stdout")
		tau    = flag.Float64("tau", 0.8, "similarity threshold")
		fnName = flag.String("fn", "jaccard", "similarity function: jaccard, cosine, dice")
		s1     = flag.String("stage1", "BTO", "token ordering: BTO or OPTO")
		s2     = flag.String("stage2", "PK", "kernel: BK, PK, or FVT")
		kern   = flag.String("kernel", "", "alias for -stage2 (bk, pk, fvt; case-insensitive)")
		s3     = flag.String("stage3", "BRJ", "record join: BRJ or OPRJ")
		bitmap = flag.Bool("bitmap", false, "enable the bitmap-signature verification fast path (identical output, fewer verifications)")
		red    = flag.Int("reducers", 8, "reduce tasks per job")
		planIs = flag.String("plan", "", "auto = sample the input, predict every configuration's makespan, and run the cheapest (overrides -stage*, -reducers, -bitmap, -split*)")
		split  = flag.Int("split", 0, "split each hot token's reduce group across this many salted sub-keys (0 = off, 2..15)")
		splHot = flag.Int("split-hot", 0, "how many of the most frequent tokens count as hot for -split (default: set it explicitly)")
		par    = flag.Int("par", 0, "host parallelism (0 = all CPUs; wall-clock only, never affects output)")
		stats  = flag.Bool("stats", false, "print per-stage statistics to stderr")

		maxAttempts = flag.Int("max-attempts", 1, "attempts per task before the job fails (1 = no retries)")
		backoff     = flag.Duration("retry-backoff", 0, "base delay before a task retry (exponential, jittered)")
		taskTimeout = flag.Duration("task-timeout", 0, "per-attempt wall-clock limit (0 = none)")
		faultRate   = flag.Float64("fault-rate", 0, "inject deterministic failures into this fraction of task attempts (needs -max-attempts > 1)")
		faultSeed   = flag.Int64("fault-seed", 1, "seed selecting which tasks the injected failures hit")

		nodes       = flag.Int("nodes", 1, "virtual DFS nodes the input blocks spread over")
		replication = flag.Int("replication", 1, "block replicas stored on distinct nodes (>= 2 survives a node death)")
		nodeFail    = flag.Int("node-fail", -1, "kill this DFS node after the first job's map phase (-1 = none)")
		speculative = flag.Bool("speculative", false, "race a backup attempt against every reduce task, committing the first to finish")

		traceOn  = flag.Bool("trace", false, "collect a structured trace of the run and write trace.jsonl, timeline.svg, and metrics.json")
		traceOut = flag.String("trace-out", "", "directory for the trace artifacts (implies -trace; default \"trace\" when -trace is set)")

		transport = flag.String("transport", "local", "task execution transport: local (in-process) or rpc (forked worker processes)")
		workers   = flag.Int("workers", 0, "worker processes to fork for -transport rpc (implies rpc; default 2)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *traceOut != "" {
		*traceOn = true
	} else if *traceOn {
		*traceOut = "trace"
	}

	if *kern != "" {
		*s2 = *kern
	}
	cfg, err := buildConfig(*tau, *fnName, *s1, *s2, *s3, *red, *par)
	if err != nil {
		fatal(err)
	}
	cfg.BitmapFilter = *bitmap
	cfg.SplitK, cfg.SplitHotCount = *split, *splHot
	if *split > 0 && *splHot <= 0 {
		fatal(fmt.Errorf("-split %d needs -split-hot to say how many head tokens are hot", *split))
	}
	cfg.Retry = fuzzyjoin.RetryPolicy{
		MaxAttempts:    *maxAttempts,
		Backoff:        *backoff,
		AttemptTimeout: *taskTimeout,
	}
	if *faultRate > 0 {
		if *maxAttempts <= 1 {
			fatal(fmt.Errorf("-fault-rate %v needs -max-attempts > 1 for the job to survive the injected failures", *faultRate))
		}
		cfg.FaultInjector = fuzzyjoin.RateInjector{Rate: *faultRate, Seed: *faultSeed}
	}

	if *nodes < 1 {
		fatal(fmt.Errorf("-nodes %d: need at least one node", *nodes))
	}
	fs := fuzzyjoin.NewFS(*nodes,
		fuzzyjoin.Replication(*replication), fuzzyjoin.AutoReReplicate(true))
	if *nodeFail >= 0 {
		if *nodeFail >= *nodes {
			fatal(fmt.Errorf("-node-fail %d: cluster has nodes 0..%d", *nodeFail, *nodes-1))
		}
		// The node dies after the first job's map wave — the moment its
		// committed map outputs (and block replicas) matter most — and
		// stays dead for the rest of the pipeline. With -replication 1
		// the join fails cleanly; with >= 2 it degrades gracefully.
		cfg.NodeFailures = []fuzzyjoin.NodeFailure{{Barrier: fuzzyjoin.AfterMap, Node: *nodeFail}}
	}
	cfg.Speculative = *speculative
	if *traceOn {
		cfg.Trace = fuzzyjoin.NewTracer()
	}
	if *workers > 0 && *transport == "local" {
		*transport = "rpc"
	}
	switch *transport {
	case "local":
	case "rpc":
		n := *workers
		if n <= 0 {
			n = 2
		}
		sess, err := distrib.Start(distrib.Options{Workers: n})
		if err != nil {
			fatal(err)
		}
		defer sess.Close()
		cfg.Runner = sess.Runner
		if *stats {
			fmt.Fprintf(os.Stderr, "fuzzyjoin: dispatching tasks to %d worker processes\n", n)
		}
	default:
		fatal(fmt.Errorf("unknown -transport %q (local or rpc)", *transport))
	}
	cfg.FS, cfg.Work = fs, "job"
	if err := loadFile(fs, "R", *in); err != nil {
		fatal(err)
	}

	spec := fuzzyjoin.JoinSpec{Config: cfg, Input: "R"}
	if *in2 != "" {
		if err := loadFile(fs, "S", *in2); err != nil {
			fatal(err)
		}
		spec.InputS = "S"
	}
	switch *planIs {
	case "":
	case "auto":
		p, err := fuzzyjoin.Plan(context.Background(), spec)
		if err != nil {
			fatal(err)
		}
		fmt.Fprint(os.Stderr, p.Render())
		spec.Config = p.Best.Apply(spec.Config)
	default:
		fatal(fmt.Errorf("unknown -plan %q (only \"auto\")", *planIs))
	}
	res, err := fuzzyjoin.Join(context.Background(), spec)
	if err != nil {
		fatal(err)
	}

	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	for _, p := range pairs {
		fmt.Fprintf(w, "%.6f\t%d\t%d\t%s\t%s\n", p.Sim, p.Left.RID, p.Right.RID,
			p.Left.JoinAttr(fuzzyjoin.FieldTitle, fuzzyjoin.FieldAuthors),
			p.Right.JoinAttr(fuzzyjoin.FieldTitle, fuzzyjoin.FieldAuthors))
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "joined pairs: %d\n", res.Pairs)
		for _, st := range res.Stages {
			fmt.Fprintf(os.Stderr, "stage %d (%s): %d job(s), wall %v\n",
				st.Stage, st.Alg, len(st.Jobs), st.Wall.Round(1e6))
			for _, job := range st.Jobs {
				fmt.Fprint(os.Stderr, job.Report())
			}
		}
	}

	if *traceOn {
		if err := writeTraceArtifacts(*traceOut, res, cfg.Combo(), *nodes); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "fuzzyjoin: trace artifacts written to %s/\n", *traceOut)
	}
}

// writeTraceArtifacts exports the run's observability bundle: the raw
// event log (trace.jsonl), the simulated per-node timeline
// (timeline.svg), and the schema-versioned metrics document
// (metrics.json).
func writeTraceArtifacts(dir string, res *fuzzyjoin.Result, combo string, nodes int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	jf, err := os.Create(filepath.Join(dir, "trace.jsonl"))
	if err != nil {
		return err
	}
	defer jf.Close()
	if err := res.Trace.WriteJSONL(jf); err != nil {
		return err
	}
	svg := fuzzyjoin.TimelineSVG(combo+" on "+fmt.Sprintf("%d node(s)", nodes),
		fuzzyjoin.TimelineEvents(res, nodes))
	if err := os.WriteFile(filepath.Join(dir, "timeline.svg"), []byte(svg), 0o644); err != nil {
		return err
	}
	doc, err := json.MarshalIndent(res.Export(combo), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "metrics.json"), append(doc, '\n'), 0o644)
}

func buildConfig(tau float64, fnName, s1, s2, s3 string, reducers, par int) (fuzzyjoin.Config, error) {
	var cfg fuzzyjoin.Config
	fn, err := simfn.ParseFunc(fnName)
	if err != nil {
		return cfg, err
	}
	cfg.Fn, cfg.Threshold = fn, tau
	cfg.NumReducers, cfg.Parallelism = reducers, par
	switch strings.ToUpper(s1) {
	case "BTO":
		cfg.TokenOrder = core.BTO
	case "OPTO":
		cfg.TokenOrder = core.OPTO
	default:
		return cfg, fmt.Errorf("unknown stage1 algorithm %q", s1)
	}
	switch strings.ToUpper(s2) {
	case "BK":
		cfg.Kernel = core.BK
	case "PK":
		cfg.Kernel = core.PK
	case "FVT":
		cfg.Kernel = core.FVT
	default:
		return cfg, fmt.Errorf("unknown stage2 algorithm %q", s2)
	}
	switch strings.ToUpper(s3) {
	case "BRJ":
		cfg.RecordJoin = core.BRJ
	case "OPRJ":
		cfg.RecordJoin = core.OPRJ
	default:
		return cfg, fmt.Errorf("unknown stage3 algorithm %q", s3)
	}
	return cfg, nil
}

// loadFile copies a local text file of record lines into the DFS.
func loadFile(fs *fuzzyjoin.FS, name, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := fs.Create(name)
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if err := w.Append(append([]byte(line), '\n')); err != nil {
			return err
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return w.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fuzzyjoin:", err)
	os.Exit(1)
}
