package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"fuzzyjoin"
	"fuzzyjoin/internal/core"
	"fuzzyjoin/internal/simfn"
)

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig(0.7, "cosine", "opto", "pk", "oprj", 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fn != simfn.Cosine || cfg.Threshold != 0.7 {
		t.Fatalf("fn/threshold = %v/%v", cfg.Fn, cfg.Threshold)
	}
	if cfg.TokenOrder != core.OPTO || cfg.Kernel != core.PK || cfg.RecordJoin != core.OPRJ {
		t.Fatalf("algs = %v %v %v", cfg.TokenOrder, cfg.Kernel, cfg.RecordJoin)
	}
	if cfg.NumReducers != 6 || cfg.Parallelism != 2 {
		t.Fatalf("reducers/par = %d/%d", cfg.NumReducers, cfg.Parallelism)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := [][3]string{
		{"XTO", "PK", "BRJ"},
		{"BTO", "XX", "BRJ"},
		{"BTO", "PK", "XX"},
	}
	for _, c := range cases {
		if _, err := buildConfig(0.8, "jaccard", c[0], c[1], c[2], 4, 1); err == nil {
			t.Fatalf("buildConfig accepted %v", c)
		}
	}
	if _, err := buildConfig(0.8, "euclid", "BTO", "PK", "BRJ", 4, 1); err == nil {
		t.Fatal("buildConfig accepted unknown similarity function")
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "recs.tsv")
	content := "1\ttitle one\tauthor\trest\n\n2\ttitle two\tauthor\trest\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs := fuzzyjoin.NewFS(1)
	if err := loadFile(fs, "in", path); err != nil {
		t.Fatal(err)
	}
	data, err := fs.ReadAll("in")
	if err != nil {
		t.Fatal(err)
	}
	want := "1\ttitle one\tauthor\trest\n2\ttitle two\tauthor\trest\n"
	if string(data) != want {
		t.Fatalf("loaded %q, want %q (blank line dropped)", data, want)
	}
	if err := loadFile(fs, "missing", filepath.Join(dir, "nope")); err == nil {
		t.Fatal("loadFile accepted missing path")
	}
}

// TestEndToEndViaCLIHelpers drives the same path main takes, minus
// flag parsing and stdout.
func TestEndToEndViaCLIHelpers(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pubs.tsv")
	content := "1\tparallel set similarity joins\tvernica carey li\t\n" +
		"2\tparallel set similarity joins\tvernica carey li\t\n" +
		"3\tsomething else entirely different\tnobody\t\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := buildConfig(0.8, "jaccard", "BTO", "PK", "BRJ", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	fs := fuzzyjoin.NewFS(1)
	cfg.FS, cfg.Work = fs, "job"
	if err := loadFile(fs, "R", path); err != nil {
		t.Fatal(err)
	}
	res, err := fuzzyjoin.Join(context.Background(),
		fuzzyjoin.JoinSpec{Config: cfg, Input: "R"})
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := fuzzyjoin.ReadJoinedPairs(fs, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 1 || pairs[0].Left.RID != 1 || pairs[0].Right.RID != 2 {
		t.Fatalf("pairs = %v", pairs)
	}
}
