// Command ssjexp runs the paper-reproduction experiment suite and prints
// every table and figure of the evaluation (§6) plus the ablations
// DESIGN.md calls out. See EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// Usage:
//
//	ssjexp [-base N] [-baseS N] [-seed S] [-tau T] [-par P] [-mem BYTES] [-only LIST]
//
// -only selects a comma-separated subset of experiment names (fig8, fig9,
// table1, fig11, table2, fig12, fig13, fig14, groups, skew, blocks,
// filters, kernels, fvt, routing, combiner, singlestage, engine, tau,
// faults, nodefaults, distrib, serve, planner).
//
// Unlike the simulated-makespan experiments, "distrib" and "serve"
// measure real wall-clock time; -distrib-out FILE and -serve-out FILE
// record their results as JSON (the committed BENCH_distrib.json and
// BENCH_serve.json). "planner" sweeps the cost planner against a
// hand-tuned grid on three Zipf-skewed workloads; -planner-out FILE
// records the ablation as JSON (the committed BENCH_planner.json).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"fuzzyjoin/internal/distrib"
	"fuzzyjoin/internal/experiments"
)

func main() {
	// The distrib ablation forks this binary as RPC workers; a forked
	// copy serves tasks here and never reaches the flag parsing.
	distrib.MaybeWorker()
	var (
		svgDir = flag.String("svg", "", "also write the figure-shaped results as SVG files into this directory")
		base   = flag.Int("base", 0, "x1 DBLP-like corpus size (default 1200)")
		baseS  = flag.Int("baseS", 0, "x1 CITESEERX-like corpus size (default 1300)")
		seed   = flag.Int64("seed", 0, "generation seed (default 42)")
		tau    = flag.Float64("tau", 0, "similarity threshold (default 0.8)")
		par    = flag.Int("par", 0, "host parallelism (default 1: experiments keep task costs stable; the join CLI defaults to all CPUs)")
		mem    = flag.Int64("mem", -1, "per-task memory budget in bytes (default 1 MiB; 0 disables)")
		only   = flag.String("only", "", "comma-separated experiment subset")

		distribOut = flag.String("distrib-out", "", "write the distrib ablation result as JSON to this file")
		serveOut   = flag.String("serve-out", "", "write the serve ablation result as JSON to this file")
		plannerOut = flag.String("planner-out", "", "write the planner ablation result as JSON to this file")

		traceOn  = flag.Bool("trace", false, "also run the traced fault-tolerance demo and write trace.jsonl, timeline.svg, and metrics.json")
		traceOut = flag.String("trace-out", "", "directory for the trace demo artifacts (implies -trace; default \"trace\" when -trace is set)")
	)
	flag.Parse()
	if *traceOut != "" {
		*traceOn = true
	} else if *traceOn {
		*traceOut = "trace"
	}

	p := experiments.DefaultParams()
	if *base > 0 {
		p.BaseRecords = *base
	}
	if *baseS > 0 {
		p.BaseRecordsS = *baseS
	}
	if *seed != 0 {
		p.Seed = *seed
	}
	if *tau > 0 {
		p.Threshold = *tau
	}
	if *par > 0 {
		p.Parallelism = *par
	}
	if *mem >= 0 {
		p.MemoryPerTask = *mem
	}

	want := map[string]bool{}
	for _, n := range strings.Split(*only, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	fmt.Printf("fuzzyjoin experiment suite — base DBLP-like %d recs, CITESEERX-like %d recs, seed %d, tau %.2f\n",
		p.BaseRecords, p.BaseRecordsS, p.Seed, p.Threshold)
	fmt.Printf("cluster model: 4 map + 4 reduce slots/node; per-task memory budget %d bytes\n\n", p.MemoryPerTask)

	if *svgDir != "" {
		if err := os.MkdirAll(*svgDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "ssjexp:", err)
			os.Exit(1)
		}
	}
	writeSVG := func(name, svg string) {
		if *svgDir == "" || svg == "" {
			return
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := os.WriteFile(path, []byte(svg), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "ssjexp:", err)
			os.Exit(1)
		}
		fmt.Printf("[wrote %s]\n", path)
	}

	s := experiments.NewSuite(p)
	type renderer interface{ Render() string }
	type svger interface{ SVG() string }
	run := func(name string, fn func() (renderer, error)) {
		if !selected(name) {
			return
		}
		start := time.Now()
		r, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
		if sv, ok := r.(svger); ok {
			writeSVG(name, sv.SVG())
		}
		if sp, ok := r.(*experiments.SpeedupResult); ok {
			writeSVG(name+"-relative", sp.RelativeSVG())
		}
		writeJSON := func(path string, doc []byte, err error) {
			if err == nil {
				err = os.WriteFile(path, doc, 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "ssjexp:", err)
				os.Exit(1)
			}
			fmt.Printf("[wrote %s]\n", path)
		}
		if dr, ok := r.(*experiments.DistribResult); ok && *distribOut != "" {
			doc, err := dr.JSON()
			writeJSON(*distribOut, doc, err)
		}
		if sr, ok := r.(*experiments.ServeResult); ok && *serveOut != "" {
			doc, err := sr.JSON()
			writeJSON(*serveOut, doc, err)
		}
		if pr, ok := r.(*experiments.PlannerResult); ok && *plannerOut != "" {
			doc, err := pr.JSON()
			writeJSON(*plannerOut, doc, err)
		}
		fmt.Printf("[%s ran in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("fig8", func() (renderer, error) { return s.Fig8() })
	run("fig9", func() (renderer, error) { return s.Fig9() })
	run("table1", func() (renderer, error) { return s.Table1() })
	run("fig11", func() (renderer, error) { return s.Fig11() })
	run("table2", func() (renderer, error) { return s.Table2() })
	run("fig12", func() (renderer, error) { return s.Fig12() })
	run("fig13", func() (renderer, error) { return s.Fig13() })
	run("fig14", func() (renderer, error) { return s.Fig14() })
	run("groups", func() (renderer, error) { return s.GroupAblation() })
	run("skew", func() (renderer, error) { return s.SkewStats() })
	run("blocks", func() (renderer, error) { return s.BlockProcessing() })
	run("filters", func() (renderer, error) { return s.FilterAblation() })
	run("kernels", func() (renderer, error) { return s.KernelStats() })
	run("fvt", func() (renderer, error) { return s.FVTAblation() })
	run("routing", func() (renderer, error) { return s.RoutingAblation() })
	run("combiner", func() (renderer, error) { return s.CombinerAblation() })
	run("singlestage", func() (renderer, error) { return s.SingleStage() })
	run("engine", func() (renderer, error) { return s.EngineAblation() })
	run("tau", func() (renderer, error) { return s.ThresholdSweep() })
	run("faults", func() (renderer, error) { return s.FaultAblation() })
	run("nodefaults", func() (renderer, error) { return s.NodeFaultAblation() })
	run("distrib", func() (renderer, error) { return s.DistribAblation() })
	run("serve", func() (renderer, error) { return s.ServeAblation() })
	run("planner", func() (renderer, error) { return s.PlannerAblation() })

	if *traceOn {
		start := time.Now()
		art, err := s.TraceDemo()
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		for name, data := range map[string][]byte{
			"trace.jsonl":  art.JSONL,
			"timeline.svg": []byte(art.TimelineSVG),
			"metrics.json": art.MetricsJSON,
		} {
			path := filepath.Join(*traceOut, name)
			if err := os.WriteFile(path, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
				os.Exit(1)
			}
			fmt.Printf("[wrote %s]\n", path)
		}
		fmt.Printf("[trace demo: %d events, %d pairs, ran in %v]\n",
			len(art.Events), art.Pairs, time.Since(start).Round(time.Millisecond))
	}
}
