package fuzzyjoin

import (
	"io"

	"fuzzyjoin/internal/cluster"
	"fuzzyjoin/internal/core"
	"fuzzyjoin/internal/trace"
)

// Observability: every join can emit a structured trace of typed events
// (job/phase boundaries, task attempts with costs and volumes, retries,
// speculation outcomes, node failures, lost-map-output recomputations).
// Set Config.Trace to a NewTracer() and read the collected trace from
// Result.Trace, stream it as JSONL via a TraceSink, or render it as a
// per-node timeline SVG. Tracing is off by default and free when off:
// a nil Config.Trace emits nothing and leaves the join output
// byte-identical.
//
//	tr := fuzzyjoin.NewTracer()
//	res, err := fuzzyjoin.Join(ctx, fuzzyjoin.JoinSpec{
//		Config: fuzzyjoin.Config{FS: fs, Work: "job1", Trace: tr},
//		Input:  "pubs",
//	})
//	res.Trace.WriteJSONL(f)                                  // machine-readable event log
//	svg := fuzzyjoin.TimelineSVG("pubs self-join",
//		fuzzyjoin.TimelineEvents(res, 4))                    // simulated-time Gantt
type (
	// Tracer collects typed events from every job a join runs; see
	// Config.Trace. The zero of the pointer (nil) disables tracing.
	Tracer = trace.Tracer
	// Trace is a collected event log plus its schema version.
	Trace = trace.Trace
	// TraceEvent is one typed event; see internal/trace for the
	// taxonomy.
	TraceEvent = trace.Event
	// TraceSink receives events as they are emitted (streaming export).
	TraceSink = trace.Sink
	// MetricsExport is the versioned envelope the CLIs write as
	// metrics.json.
	MetricsExport = core.MetricsExport
	// ConfigError reports one invalid Config field; returned by
	// Config.Validate and every join entry point.
	ConfigError = core.ConfigError
)

// TraceSchemaVersion is the schema version stamped on traces and
// metrics exports; bumped when the meaning or name of an existing JSON
// field changes (adding fields does not bump it).
const TraceSchemaVersion = trace.SchemaVersion

// NewTracer creates a Tracer that collects events in memory; extra
// sinks, if given, additionally receive every event as it is emitted.
func NewTracer(extra ...TraceSink) *Tracer { return trace.New(extra...) }

// NewJSONLSink returns a streaming sink writing one JSON event per line
// (after a schema header) to w. Call Flush when the run completes.
func NewJSONLSink(w io.Writer) *trace.JSONLSink { return trace.NewJSONLSink(w) }

// TimelineEvents schedules a completed join's measured tasks onto the
// default virtual cluster of the given size (see internal/cluster) and
// returns simulated-time task-span events — where every attempt ran and
// when, under the paper's slot model rather than host wall-clock. When
// the join was traced, node-failure marks are carried over at their
// simulated instants. Render the result with TimelineSVG.
func TimelineEvents(res *Result, nodes int) []TraceEvent {
	var jobs []cluster.JobCost
	for _, m := range res.AllJobs() {
		jobs = append(jobs, cluster.FromMetrics(m))
	}
	var engine []trace.Event
	if res.Trace != nil {
		engine = res.Trace.Events
	}
	return cluster.Default(nodes).Timeline(jobs, engine)
}

// TimelineSVG renders task-span events (from TimelineEvents or a
// cluster Spec's Timeline) as a per-node Gantt chart.
func TimelineSVG(title string, events []TraceEvent) string {
	return trace.TimelineSVG(title, events)
}
